// Unit tests for the deterministic metrics registry: key canonicalization,
// instrument semantics, snapshots, the Merge() fold, and the digest
// contract the parallel engine relies on.
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace crn::obs {
namespace {

TEST(MetricKeyTest, RendersNameAndSortedLabels) {
  EXPECT_EQ(RenderMetricKey("mac.attempts_total", {}), "mac.attempts_total");
  EXPECT_EQ(RenderMetricKey("mac.tx_attempts_total", {{"outcome", "success"}}),
            "mac.tx_attempts_total{outcome=success}");
  // Label order never matters: the key sorts by label name.
  EXPECT_EQ(RenderMetricKey("x", {{"b", "2"}, {"a", "1"}}),
            RenderMetricKey("x", {{"a", "1"}, {"b", "2"}}));
}

TEST(MetricsRegistryTest, HandlesAreStableAndSharedPerKey) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("events_total", {{"kind", "x"}});
  Counter& b = registry.GetCounter("events_total", {{"kind", "x"}});
  EXPECT_EQ(&a, &b);
  a.Add();
  a.Add(2);
  EXPECT_EQ(b.value(), 3);
  // A different label set is a different instrument.
  Counter& c = registry.GetCounter("events_total", {{"kind", "y"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.instrument_count(), 2u);
}

TEST(MetricsRegistryTest, HistogramLogBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("delay_ns");
  h.Record(0);   // bucket 0: <= 0
  h.Record(-5);  // bucket 0 too (clamped)
  h.Record(1);   // bucket 1: [1, 2)
  h.Record(2);   // bucket 2: [2, 4)
  h.Record(3);   // bucket 2
  h.Record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 2);
  EXPECT_EQ(h.buckets()[11], 1);
}

TEST(MetricsRegistryTest, CaptureIsSortedAndSparse) {
  MetricsRegistry registry;
  registry.GetCounter("z_total").Add(9);
  registry.GetGauge("a.depth").Set(4);
  registry.GetHistogram("m.delay_ns").Record(5);
  const Snapshot snapshot = registry.Capture(1234);
  EXPECT_EQ(snapshot.at, 1234);
  ASSERT_EQ(snapshot.entries.size(), 3u);
  EXPECT_EQ(snapshot.entries[0].key, "a.depth");
  EXPECT_EQ(snapshot.entries[1].key, "m.delay_ns");
  EXPECT_EQ(snapshot.entries[2].key, "z_total");
  EXPECT_EQ(snapshot.entries[0].value, 4);
  EXPECT_EQ(snapshot.entries[2].value, 9);
  // Histograms keep only non-empty buckets.
  ASSERT_EQ(snapshot.entries[1].buckets.size(), 1u);
  EXPECT_EQ(snapshot.entries[1].buckets[0].first, 3);  // 5 in [4, 8)
  EXPECT_EQ(snapshot.entries[1].buckets[0].second, 1);
}

TEST(MetricsRegistryTest, MergeAddsCountersAndHistogramsGaugesLastWin) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("n_total").Add(2);
  b.GetCounter("n_total").Add(5);
  b.GetCounter("only_in_b_total").Add(1);
  a.GetGauge("depth").Set(3);
  b.GetGauge("depth").Set(8);
  a.GetHistogram("h").Record(1);
  b.GetHistogram("h").Record(1);
  b.GetHistogram("h").Record(100);
  a.Merge(b);
  EXPECT_EQ(a.GetCounter("n_total").value(), 7);
  EXPECT_EQ(a.GetCounter("only_in_b_total").value(), 1);
  EXPECT_EQ(a.GetGauge("depth").value(), 8);  // merged-in value wins
  EXPECT_EQ(a.GetHistogram("h").count(), 3);
  EXPECT_EQ(a.GetHistogram("h").sum(), 102);
  EXPECT_EQ(a.GetHistogram("h").max(), 100);
}

TEST(MetricsRegistryTest, DigestReflectsStateNotSeries) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("n_total").Add(3);
  b.GetCounter("n_total").Add(3);
  EXPECT_EQ(a.Digest(), b.Digest());
  // The series is presentation data; recording points must not perturb the
  // state digest.
  a.RecordSeriesPoint(100);
  a.RecordSeriesPoint(200);
  EXPECT_EQ(a.series().size(), 2u);
  EXPECT_EQ(a.Digest(), b.Digest());
  b.GetCounter("n_total").Add(1);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(MetricsRegistryTest, MergeOrderFixedByCallerReproduces) {
  // The sweep engine's contract: folding per-cell registries in a fixed
  // order produces one well-defined state. Simulate two cells folded into
  // fresh roots in the same order — identical outcomes.
  auto make_cell = [](std::int64_t base) {
    MetricsRegistry cell;
    cell.GetCounter("n_total").Add(base);
    cell.GetGauge("depth").Set(base);
    cell.GetHistogram("h").Record(base);
    return cell;
  };
  MetricsRegistry root1;
  MetricsRegistry root2;
  for (MetricsRegistry* root : {&root1, &root2}) {
    const MetricsRegistry cell_a = make_cell(2);
    const MetricsRegistry cell_b = make_cell(7);
    root->Merge(cell_a);
    root->Merge(cell_b);
  }
  EXPECT_EQ(root1.Digest(), root2.Digest());
  EXPECT_EQ(root1.GetGauge("depth").value(), 7);
}

TEST(MetricsRegistryTest, MergeIsInvariantToLabelInsertionOrder) {
  // Labels render sorted by key (RenderMetricKey), so two producers that
  // list the same labels in different orders address the same instrument —
  // and merging them folds into one series, not two.
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("sched.fires", {{"kind", "tx"}, {"node", "3"}}).Add(2);
  b.GetCounter("sched.fires", {{"node", "3"}, {"kind", "tx"}}).Add(5);
  a.Merge(b);
  EXPECT_EQ(a.GetCounter("sched.fires", {{"node", "3"}, {"kind", "tx"}}).value(),
            7);
  EXPECT_EQ(a.Capture(0).entries.size(), 1u);
}

TEST(MetricsRegistryTest, DigestStableUnderMergePermutation) {
  // Counters and histograms merge commutatively, so folding the same cell
  // set in any order must land on the same digest. (Gauges are last-write
  // and deliberately excluded — their merge order is fixed by the caller.)
  auto make_cell = [](std::int64_t base) {
    MetricsRegistry cell;
    cell.GetCounter("n_total", {{"cell", std::to_string(base % 2)}}).Add(base);
    cell.GetHistogram("h").Record(base);
    cell.GetHistogram("h").Record(base * 16);
    return cell;
  };
  MetricsRegistry forward;
  MetricsRegistry backward;
  for (std::int64_t base : {1, 2, 3}) forward.Merge(make_cell(base));
  for (std::int64_t base : {3, 2, 1}) backward.Merge(make_cell(base));
  EXPECT_EQ(forward.Digest(), backward.Digest());
}

TEST(MetricsRegistryTest, MergeWithEmptyAndSingletonRegistries) {
  MetricsRegistry populated;
  populated.GetCounter("n_total").Add(3);
  populated.GetHistogram("h").Record(7);
  const std::uint64_t before = populated.Digest();

  // Empty in either direction: merging an empty registry is a no-op, and
  // an empty root folded with a populated cell reproduces the cell.
  const MetricsRegistry empty;
  populated.Merge(empty);
  EXPECT_EQ(populated.Digest(), before);
  MetricsRegistry root;
  root.Merge(populated);
  EXPECT_EQ(root.Digest(), before);

  // Singleton histogram: one recorded value folds exactly (count, sum, max
  // and the occupied bucket all carry over).
  MetricsRegistry single;
  single.GetHistogram("h").Record(100);
  populated.Merge(single);
  EXPECT_EQ(populated.GetHistogram("h").count(), 2);
  EXPECT_EQ(populated.GetHistogram("h").sum(), 107);
  EXPECT_EQ(populated.GetHistogram("h").max(), 100);
  // An empty histogram instrument (declared, never recorded) must not
  // disturb the target's extrema when merged in.
  MetricsRegistry declared;
  (void)declared.GetHistogram("h");
  const std::uint64_t merged_state = populated.Digest();
  populated.Merge(declared);
  EXPECT_EQ(populated.GetHistogram("h").count(), 2);
  EXPECT_EQ(populated.GetHistogram("h").max(), 100);
  EXPECT_EQ(populated.Digest(), merged_state);
}

TEST(SnapshotDigestTest, MatchesRegistryDigestContract) {
  MetricsRegistry registry;
  registry.GetCounter("n_total").Add(42);
  registry.GetHistogram("h").Record(9);
  // Digest() is defined as the digest of the current state; capturing the
  // same state twice must agree.
  EXPECT_EQ(SnapshotDigest(registry.Capture(0)), SnapshotDigest(registry.Capture(0)));
  const std::uint64_t before = registry.Digest();
  registry.GetCounter("n_total").Add(1);
  EXPECT_NE(registry.Digest(), before);
}

}  // namespace
}  // namespace crn::obs
