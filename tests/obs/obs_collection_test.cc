// End-to-end observability contract on core::RunAddc: attaching sinks never
// changes a run (zero-cost contract), the auditor's violation counters land
// in the registry with matching totals, and the MAC collectors agree with
// the MAC's own aggregate statistics.
#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/scenario.h"
#include "mac/packet.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace crn::core {
namespace {

ScenarioConfig TinyConfig() {
  ScenarioConfig config = ScenarioConfig::ScaledDefaults(0.05);
  config.seed = 11;
  return config;
}

TEST(ObsCollectionTest, AttachingSinksIsObservationOnly) {
  const Scenario scenario(TinyConfig(), 0);

  AuditReport bare_report;
  RunOptions bare;
  bare.audit_report = &bare_report;
  const CollectionResult bare_result = RunAddc(scenario, bare);

  obs::MetricsRegistry metrics;
  obs::PacketSpanTracer spans;
  AuditReport observed_report;
  RunOptions observed;
  observed.audit_report = &observed_report;
  observed.metrics = &metrics;
  observed.spans = &spans;
  const CollectionResult observed_result = RunAddc(scenario, observed);

  // The audit trace digest hashes every transmission: equal digests certify
  // the sinks did not perturb the simulation in any way.
  EXPECT_NE(bare_report.trace_digest, 0u);
  EXPECT_EQ(bare_report.trace_digest, observed_report.trace_digest);
  EXPECT_EQ(bare_result.delay_ms, observed_result.delay_ms);
  EXPECT_EQ(bare_result.mac.attempts, observed_result.mac.attempts);
  EXPECT_GT(metrics.instrument_count(), 0u);
  EXPECT_FALSE(spans.packets().empty());
}

TEST(ObsCollectionTest, AuditCountersMatchFinalizedReport) {
  const Scenario scenario(TinyConfig(), 0);
  obs::MetricsRegistry metrics;
  AuditReport report;
  RunOptions options;
  options.audit_report = &report;
  options.metrics = &metrics;
  RunAddc(scenario, options);

  const auto counter = [&](const char* invariant) {
    return metrics.GetCounter("audit.violations_total", {{"invariant", invariant}})
        .value();
  };
  EXPECT_EQ(counter("event-time"), report.time_violations);
  EXPECT_EQ(counter("separation"), report.separation_violations);
  EXPECT_EQ(counter("su-sir"), report.su_sir_violations);
  EXPECT_EQ(counter("pu-protection"), report.pu_protection_violations);
  EXPECT_EQ(counter("routing"), report.routing_violations);
  EXPECT_EQ(counter("event-time") + counter("separation") + counter("su-sir") +
                counter("pu-protection") + counter("routing"),
            report.total_violations());
}

TEST(ObsCollectionTest, MacMetricsAgreeWithMacStats) {
  const Scenario scenario(TinyConfig(), 0);
  obs::MetricsRegistry metrics;
  obs::PacketSpanTracer spans;
  RunOptions options;
  options.metrics = &metrics;
  options.spans = &spans;
  const CollectionResult result = RunAddc(scenario, options);
  ASSERT_TRUE(result.completed);

  // num_sus excludes the base station, so every SU produces one packet.
  const std::int64_t produced = scenario.config().num_sus;
  EXPECT_EQ(metrics.GetCounter("mac.packets_created_total").value(), produced);
  EXPECT_EQ(metrics.GetCounter("mac.packets_delivered_total").value(),
            result.mac.delivered);
  EXPECT_EQ(metrics.GetCounter("mac.packets_dropped_total").value(), 0);

  // Per-outcome attempt counters fold back to the MAC's aggregate.
  std::int64_t attempts = 0;
  for (std::int32_t i = 0; i < mac::kTxOutcomeCount; ++i) {
    attempts += metrics
                    .GetCounter("mac.tx_attempts_total",
                                {{"outcome", ToString(static_cast<mac::TxOutcome>(i))}})
                    .value();
  }
  EXPECT_EQ(attempts, result.mac.attempts);

  // The delivery-delay histogram and the span tracer see the same packets.
  EXPECT_EQ(metrics.GetHistogram("mac.delivery_delay_ns").count(), produced);
  EXPECT_EQ(static_cast<std::int64_t>(spans.packets().size()), produced);
  sim::TimeNs histogram_sum = 0;
  for (const auto& [id, span] : spans.packets()) {
    histogram_sum += span.delivery_delay();
  }
  EXPECT_EQ(metrics.GetHistogram("mac.delivery_delay_ns").sum(), histogram_sum);
}

}  // namespace
}  // namespace crn::core
