// Packet-lifecycle span tracer tests on a driven CollectionMac: exact
// delivery-delay reconstruction against the MAC's own delivery times, span
// well-formedness, digest determinism, and the Chrome trace export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mac/collection_mac.h"
#include "obs/span_tracer.h"
#include "sim/simulator.h"

namespace crn::obs {
namespace {

using geom::Aabb;
using geom::Vec2;

// Three SUs in a chain delivering to sink 0 over a quiet spectrum — the
// same rig the TraceRecorder tests use.
struct Rig {
  Rig()
      : area(Aabb::Square(100.0)),
        primary(PuConfig(), area, std::vector<Vec2>{}),
        mac(simulator, primary, {{10, 50}, {18, 50}, {26, 50}}, area, 0,
            {0, 0, 1}, Config(), Rng(17)) {}

  static mac::MacConfig Config() {
    mac::MacConfig config;
    config.pcr = 30.0;
    config.audit_stride = 0;
    return config;
  }
  static pu::PrimaryConfig PuConfig() {
    pu::PrimaryConfig config;
    config.count = 0;
    config.activity = 0.0;
    return config;
  }

  Aabb area;
  sim::Simulator simulator;
  pu::PrimaryNetwork primary;
  mac::CollectionMac mac;
};

TEST(PacketSpanTracerTest, SpansReconstructExactDeliveryDelay) {
  Rig rig;
  PacketSpanTracer tracer;
  tracer.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  ASSERT_TRUE(rig.mac.finished());

  // One span per packet (nodes 1 and 2 produce; 0 is the sink).
  ASSERT_EQ(tracer.packets().size(), 2u);
  const std::vector<sim::TimeNs>& delivery = rig.mac.delivery_time();
  for (const auto& [id, span] : tracer.packets()) {
    EXPECT_EQ(id, PacketSpanTracer::PacketId(span.origin, span.snapshot));
    EXPECT_TRUE(span.terminal());
    EXPECT_EQ(span.created, 0);
    // The tracer's view must agree with the MAC's ground truth to the
    // nanosecond — this is the exact-delay reconstruction contract.
    EXPECT_EQ(span.delivered, delivery[static_cast<std::size_t>(span.origin)]);
    EXPECT_EQ(span.delivery_delay(),
              delivery[static_cast<std::size_t>(span.origin)] - span.created);
  }

  // Packet 2 relays through node 1: exactly one relay enqueue, and it
  // happens at a strictly earlier time than delivery.
  const PacketSpanTracer::PacketSpan& via_relay =
      tracer.packets().at(PacketSpanTracer::PacketId(2, 0));
  ASSERT_EQ(via_relay.enqueues.size(), 1u);
  EXPECT_EQ(via_relay.enqueues[0].node, 1);
  EXPECT_LT(via_relay.enqueues[0].at, via_relay.delivered);
  EXPECT_EQ(via_relay.hops, 2);

  EXPECT_EQ(static_cast<std::int64_t>(tracer.attempts().size()),
            rig.mac.stats().attempts);
}

TEST(PacketSpanTracerTest, SpansAreWellFormed) {
  Rig rig;
  PacketSpanTracer tracer;
  tracer.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();
  for (const PacketSpanTracer::Attempt& attempt : tracer.attempts()) {
    EXPECT_LE(attempt.start, attempt.end);
  }
  // Zero-length freeze intervals (contention started and resumed in the
  // same instant) are dropped, so every exported freeze has extent.
  for (const PacketSpanTracer::FreezeSpan& freeze : tracer.freezes()) {
    EXPECT_LT(freeze.begin, freeze.end);
  }
}

TEST(PacketSpanTracerTest, DigestIsDeterministicAcrossRuns) {
  auto run = [] {
    Rig rig;
    PacketSpanTracer tracer;
    tracer.Attach(rig.mac);
    rig.mac.StartSnapshotCollection();
    rig.simulator.Run();
    return tracer.Digest();
  };
  const std::uint64_t first = run();
  const std::uint64_t second = run();
  EXPECT_NE(first, 0u);
  EXPECT_EQ(first, second);
}

TEST(PacketSpanTracerTest, ChromeTraceExportIsWellFormed) {
  Rig rig;
  PacketSpanTracer tracer;
  tracer.Attach(rig.mac);
  rig.mac.StartSnapshotCollection();
  rig.simulator.Run();

  const std::vector<ChromeTraceEvent> events = tracer.ToChromeEvents();
  // Every packet contributes an async begin/end pair.
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const ChromeTraceEvent& event : events) {
    if (event.phase == ChromeTraceEvent::Phase::kAsyncBegin) ++begins;
    if (event.phase == ChromeTraceEvent::Phase::kAsyncEnd) ++ends;
    EXPECT_GE(event.ts_us, 0.0);
  }
  EXPECT_EQ(begins, tracer.packets().size());
  EXPECT_EQ(ends, tracer.packets().size());

  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace crn::obs
