// Tests for the PU activity processes: i.i.d. Bernoulli (the paper's
// evaluation model) vs the two-state Markov chain (same stationary duty
// cycle, tunable burstiness).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "pu/primary_network.h"

namespace crn::pu {
namespace {

using geom::Aabb;

PrimaryConfig MarkovConfig(double activity, double burst) {
  PrimaryConfig config;
  config.count = 40;
  config.activity = activity;
  config.process = ActivityProcess::kMarkov;
  config.mean_burst_slots = burst;
  return config;
}

TEST(ActivityProcessTest, MarkovStationaryFractionMatchesPt) {
  const Aabb area = Aabb::Square(100.0);
  for (double burst : {2.0, 4.0, 10.0}) {
    PrimaryNetwork network(MarkovConfig(0.3, burst), area, Rng(1));
    Rng activity(7);
    const int kSlots = 20000;
    for (int s = 0; s < kSlots; ++s) network.ResampleSlot(activity);
    const double fraction = static_cast<double>(network.activations_total()) /
                            (static_cast<double>(kSlots) * network.count());
    EXPECT_NEAR(fraction, 0.3, 0.02) << "burst=" << burst;
  }
}

TEST(ActivityProcessTest, MarkovMeanBurstLengthMatchesConfig) {
  const Aabb area = Aabb::Square(100.0);
  const double kBurst = 6.0;
  PrimaryNetwork network(MarkovConfig(0.3, kBurst), area, Rng(2));
  Rng activity(9);
  // Track bursts of PU 0.
  std::int64_t bursts = 0;
  std::int64_t active_slots = 0;
  bool prev = false;
  for (int s = 0; s < 60000; ++s) {
    network.ResampleSlot(activity);
    const bool now = network.IsActive(0);
    if (now) {
      ++active_slots;
      if (!prev) ++bursts;
    }
    prev = now;
  }
  ASSERT_GT(bursts, 100);
  EXPECT_NEAR(static_cast<double>(active_slots) / static_cast<double>(bursts),
              kBurst, 0.6);
}

TEST(ActivityProcessTest, MarkovIsBurstierThanIid) {
  // Count on->off transitions: with mean burst L the hazard is 1/L per
  // active slot, so longer bursts mean fewer transitions at equal duty.
  const Aabb area = Aabb::Square(100.0);
  auto transitions = [&](PrimaryConfig config) {
    PrimaryNetwork network(config, area, Rng(3));
    Rng activity(11);
    std::int64_t count = 0;
    std::vector<char> prev(network.count(), 0);
    for (int s = 0; s < 5000; ++s) {
      network.ResampleSlot(activity);
      for (PuId id = 0; id < network.count(); ++id) {
        const char now = network.IsActive(id) ? 1 : 0;
        if (prev[id] && !now) ++count;
        prev[id] = now;
      }
    }
    return count;
  };
  PrimaryConfig iid;
  iid.count = 40;
  iid.activity = 0.3;
  const std::int64_t iid_transitions = transitions(iid);
  const std::int64_t markov_transitions = transitions(MarkovConfig(0.3, 8.0));
  EXPECT_LT(markov_transitions, iid_transitions / 2);
}

TEST(ActivityProcessTest, MarkovRejectsUnreachableActivity) {
  const Aabb area = Aabb::Square(100.0);
  // p_t = 0.9 with burst 2: idle->active probability would exceed 1.
  EXPECT_THROW(PrimaryNetwork(MarkovConfig(0.9, 2.0), area, Rng(4)),
               ContractViolation);
  EXPECT_NO_THROW(PrimaryNetwork(MarkovConfig(0.9, 20.0), area, Rng(4)));
}

TEST(ActivityProcessTest, MarkovRejectsSubSlotBursts) {
  const Aabb area = Aabb::Square(100.0);
  EXPECT_THROW(PrimaryNetwork(MarkovConfig(0.3, 0.5), area, Rng(5)),
               ContractViolation);
}

TEST(ActivityProcessTest, ToStringNames) {
  EXPECT_STREQ(ToString(ActivityProcess::kIid), "iid");
  EXPECT_STREQ(ToString(ActivityProcess::kMarkov), "markov");
}

TEST(ActivityProcessTest, SaturatedMarkovStaysActive) {
  const Aabb area = Aabb::Square(100.0);
  PrimaryConfig config = MarkovConfig(1.0, 4.0);
  PrimaryNetwork network(config, area, Rng(6));
  Rng activity(13);
  for (int s = 0; s < 10; ++s) {
    network.ResampleSlot(activity);
    EXPECT_EQ(static_cast<std::int32_t>(network.active_transmitters().size()),
              network.count());
  }
}

}  // namespace
}  // namespace crn::pu
