#include "pu/primary_network.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/vec2.h"

namespace crn::pu {
namespace {

using geom::Aabb;
using geom::Vec2;

PrimaryConfig SmallConfig() {
  PrimaryConfig config;
  config.count = 50;
  config.power = 10.0;
  config.radius = 8.0;
  config.activity = 0.3;
  return config;
}

TEST(PrimaryNetworkTest, DeploysRequestedCountInsideArea) {
  const Aabb area = Aabb::Square(100.0);
  const PrimaryNetwork network(SmallConfig(), area, Rng(1));
  EXPECT_EQ(network.count(), 50);
  for (PuId id = 0; id < network.count(); ++id) {
    EXPECT_TRUE(area.Contains(network.position(id)));
  }
}

TEST(PrimaryNetworkTest, ActivityFractionMatchesPt) {
  const Aabb area = Aabb::Square(100.0);
  PrimaryNetwork network(SmallConfig(), area, Rng(2));
  Rng activity(77);
  const int kSlots = 4000;
  for (int s = 0; s < kSlots; ++s) {
    network.ResampleSlot(activity);
  }
  EXPECT_EQ(network.slots_sampled(), kSlots);
  const double fraction = static_cast<double>(network.activations_total()) /
                          (static_cast<double>(kSlots) * network.count());
  EXPECT_NEAR(fraction, 0.3, 0.01);
}

TEST(PrimaryNetworkTest, ActiveListMatchesFlags) {
  const Aabb area = Aabb::Square(100.0);
  PrimaryNetwork network(SmallConfig(), area, Rng(3));
  Rng activity(5);
  for (int s = 0; s < 20; ++s) {
    network.ResampleSlot(activity);
    std::int32_t flagged = 0;
    for (PuId id = 0; id < network.count(); ++id) {
      if (network.IsActive(id)) ++flagged;
    }
    ASSERT_EQ(flagged, static_cast<std::int32_t>(network.active_transmitters().size()));
    for (PuId id : network.active_transmitters()) {
      ASSERT_TRUE(network.IsActive(id));
    }
  }
}

TEST(PrimaryNetworkTest, ReceiverWithinTransmissionRadius) {
  const Aabb area = Aabb::Square(100.0);
  PrimaryNetwork network(SmallConfig(), area, Rng(4));
  Rng activity(9);
  Rng receivers(10);
  for (int s = 0; s < 50; ++s) {
    network.ResampleSlot(activity);
    network.SampleReceiverPositions(receivers);
    for (PuId id : network.active_transmitters()) {
      ASSERT_LE(geom::Distance(network.position(id), network.receiver_position(id)),
                network.config().radius + 1e-9);
    }
  }
}

TEST(PrimaryNetworkTest, ExtremeActivities) {
  const Aabb area = Aabb::Square(50.0);
  PrimaryConfig config = SmallConfig();
  config.activity = 0.0;
  PrimaryNetwork silent(config, area, Rng(5));
  Rng activity(1);
  silent.ResampleSlot(activity);
  EXPECT_TRUE(silent.active_transmitters().empty());

  config.activity = 1.0;
  PrimaryNetwork saturated(config, area, Rng(6));
  saturated.ResampleSlot(activity);
  EXPECT_EQ(static_cast<std::int32_t>(saturated.active_transmitters().size()),
            saturated.count());
}

TEST(PrimaryNetworkTest, DeterministicGivenSameStreams) {
  const Aabb area = Aabb::Square(100.0);
  PrimaryNetwork a(SmallConfig(), area, Rng(7));
  PrimaryNetwork b(SmallConfig(), area, Rng(7));
  Rng act_a(42), act_b(42);
  for (int s = 0; s < 100; ++s) {
    a.ResampleSlot(act_a);
    b.ResampleSlot(act_b);
    ASSERT_EQ(a.active_transmitters(), b.active_transmitters());
  }
}

TEST(PrimaryNetworkTest, GridFindsNearbyPus) {
  const Aabb area = Aabb::Square(100.0);
  const std::vector<Vec2> positions{{10, 10}, {12, 10}, {90, 90}};
  PrimaryConfig config = SmallConfig();
  config.count = 3;
  const PrimaryNetwork network(config, area, positions);
  std::vector<PuId> near;
  network.grid().ForEachInDisk({11, 10}, 3.0, [&](PuId id) { near.push_back(id); });
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<PuId>{0, 1}));
}

TEST(PrimaryNetworkTest, RejectsInvalidConfig) {
  const Aabb area = Aabb::Square(10.0);
  PrimaryConfig config = SmallConfig();
  config.activity = 1.5;
  EXPECT_THROW(PrimaryNetwork(config, area, Rng(1)), ContractViolation);
  config = SmallConfig();
  config.power = 0.0;
  EXPECT_THROW(PrimaryNetwork(config, area, Rng(1)), ContractViolation);
  config = SmallConfig();
  config.radius = -1.0;
  EXPECT_THROW(PrimaryNetwork(config, area, Rng(1)), ContractViolation);
}

}  // namespace
}  // namespace crn::pu
