#include "routing/coolest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/deployment.h"
#include "graph/unit_disk_graph.h"

namespace crn::routing {
namespace {

using geom::Aabb;
using geom::Vec2;
using graph::NodeId;
using graph::UnitDiskGraph;

pu::PrimaryNetwork MakePrimary(std::vector<Vec2> positions, double activity,
                               Aabb area) {
  pu::PrimaryConfig config;
  config.count = static_cast<std::int32_t>(positions.size());
  config.activity = activity;
  config.radius = 10.0;
  return pu::PrimaryNetwork(config, area, std::move(positions));
}

TEST(NodeTemperaturesTest, FormulaMatchesNearbyPuCount) {
  const Aabb area = Aabb::Square(100.0);
  // One SU with 2 PUs in range, one with none.
  const std::vector<Vec2> sus{{20, 20}, {80, 80}};
  const auto primary = MakePrimary({{22, 20}, {20, 24}, {50, 50}}, 0.3, area);
  const auto temps = NodeTemperatures(sus, primary, 10.0);
  ASSERT_EQ(temps.size(), 2u);
  EXPECT_NEAR(temps[0], 1.0 - std::pow(0.7, 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(temps[1], 0.0);
}

TEST(NodeTemperaturesTest, ZeroActivityMeansCold) {
  const Aabb area = Aabb::Square(100.0);
  const std::vector<Vec2> sus{{20, 20}};
  const auto primary = MakePrimary({{22, 20}, {20, 24}}, 0.0, area);
  EXPECT_DOUBLE_EQ(NodeTemperatures(sus, primary, 10.0)[0], 0.0);
}

// A 2x4 ladder where the top row is hot: the coolest route must take the
// bottom row even though both are the same hop count.
//
//   1h - 2h - 3h
//  /            \     h = hot (PU parked on top of the node)
// 0 (sink)       6 (source)
//  \            /
//   4c - 5c - 7c... (indices below)
struct LadderFixture {
  LadderFixture()
      : area(Aabb::Square(60.0)),
        positions{{10, 20}, {20, 28}, {30, 28}, {40, 28}, {20, 12}, {30, 12},
                  {50, 20}, {40, 12}},
        graph(positions, area, 13.0),
        primary(MakePrimary({{20, 28}, {30, 28}, {40, 28}}, 0.5, area)),
        temps(NodeTemperatures(positions, primary, 5.0)) {}

  Aabb area;
  std::vector<Vec2> positions;
  UnitDiskGraph graph;
  pu::PrimaryNetwork primary;
  std::vector<double> temps;
};

TEST(CoolestNextHopsTest, AvoidsHotRow) {
  LadderFixture fixture;
  // Sanity: top-row nodes are hot, bottom cold.
  EXPECT_GT(fixture.temps[1], 0.4);
  EXPECT_DOUBLE_EQ(fixture.temps[4], 0.0);
  for (TemperatureMetric metric :
       {TemperatureMetric::kAccumulated, TemperatureMetric::kHighest,
        TemperatureMetric::kMixed}) {
    const auto next_hop = CoolestNextHops(fixture.graph, fixture.temps, 0, metric);
    // Source 6 routes through the cold bottom row 7-5-4, never 3-2-1.
    NodeId cursor = 6;
    while (cursor != 0) {
      cursor = next_hop[cursor];
      ASSERT_NE(cursor, 1) << ToString(metric);
      ASSERT_NE(cursor, 2) << ToString(metric);
      ASSERT_NE(cursor, 3) << ToString(metric);
    }
  }
}

TEST(CoolestNextHopsTest, UniformTemperaturesGiveShortestPaths) {
  Rng rng(4);
  const Aabb area = Aabb::Square(60.0);
  std::vector<Vec2> points;
  do {
    points = geom::UniformDeployment(120, area, rng);
    points[0] = area.Center();
  } while (!geom::IsUnitDiskConnected(points, area, 12.0));
  const UnitDiskGraph graph(points, area, 12.0);
  const std::vector<double> temps(points.size(), 0.5);
  const auto next_hop =
      CoolestNextHops(graph, temps, 0, TemperatureMetric::kAccumulated);
  const graph::BfsLayering bfs = BreadthFirstLayering(graph, 0);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const PathSummary path = SummarizePath(next_hop, temps, v, 0);
    ASSERT_EQ(path.hops, bfs.level[v]) << "node " << v;
  }
}

TEST(CoolestNextHopsTest, AllNodesReachSink) {
  Rng rng(5);
  const Aabb area = Aabb::Square(70.0);
  std::vector<Vec2> points;
  do {
    points = geom::UniformDeployment(150, area, rng);
    points[0] = area.Center();
  } while (!geom::IsUnitDiskConnected(points, area, 11.0));
  const UnitDiskGraph graph(points, area, 11.0);
  const auto primary = MakePrimary(geom::UniformDeployment(30, area, rng), 0.3, area);
  const auto temps = NodeTemperatures(points, primary, 24.0);
  for (TemperatureMetric metric :
       {TemperatureMetric::kAccumulated, TemperatureMetric::kHighest,
        TemperatureMetric::kMixed}) {
    const auto next_hop = CoolestNextHops(graph, temps, 0, metric);
    EXPECT_EQ(next_hop[0], 0);
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      const PathSummary path = SummarizePath(next_hop, temps, v, 0);
      ASSERT_LE(path.hops, graph.node_count());
      // Tree edges must be graph edges.
      if (v != 0) {
        ASSERT_TRUE(graph.HasEdge(v, next_hop[v]));
      }
    }
  }
}

TEST(CoolestNextHopsTest, HighestMetricMinimizesBottleneck) {
  LadderFixture fixture;
  const auto next_hop =
      CoolestNextHops(fixture.graph, fixture.temps, 0, TemperatureMetric::kHighest);
  const PathSummary path = SummarizePath(next_hop, fixture.temps, 6, 0);
  EXPECT_LT(path.highest, 0.01);  // bottleneck along the cold row
}

TEST(CoolestNextHopsTest, DeterministicTieBreaks) {
  LadderFixture fixture;
  const auto a = CoolestNextHops(fixture.graph, fixture.temps, 0,
                                 TemperatureMetric::kMixed);
  const auto b = CoolestNextHops(fixture.graph, fixture.temps, 0,
                                 TemperatureMetric::kMixed);
  EXPECT_EQ(a, b);
}

TEST(CoolestNextHopsTest, RejectsMismatchedTemperatures) {
  LadderFixture fixture;
  const std::vector<double> wrong_size(3, 0.1);
  EXPECT_THROW(
      CoolestNextHops(fixture.graph, wrong_size, 0, TemperatureMetric::kMixed),
      ContractViolation);
}

TEST(SummarizePathTest, AggregatesSourceToSinkExclusive) {
  // 2 -> 1 -> 0 with temps {0.9, 0.2, 0.4}.
  const std::vector<NodeId> next_hop{0, 0, 1};
  const std::vector<double> temps{0.9, 0.2, 0.4};
  const PathSummary path = SummarizePath(next_hop, temps, 2, 0);
  EXPECT_EQ(path.hops, 2);
  EXPECT_NEAR(path.accumulated, 0.6, 1e-12);  // temp[2] + temp[1], sink excluded
  EXPECT_NEAR(path.highest, 0.4, 1e-12);
}

TEST(ToStringTest, MetricNames) {
  EXPECT_STREQ(ToString(TemperatureMetric::kAccumulated), "accumulated");
  EXPECT_STREQ(ToString(TemperatureMetric::kHighest), "highest");
  EXPECT_STREQ(ToString(TemperatureMetric::kMixed), "mixed");
}

}  // namespace
}  // namespace crn::routing
