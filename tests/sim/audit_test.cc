#include "sim/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/simulator.h"

namespace crn::sim {
namespace {

TEST(TraceDigestTest, EmptyDigestIsOffsetBasis) {
  TraceDigest digest;
  EXPECT_EQ(digest.value(), TraceDigest::kOffsetBasis);
}

TEST(TraceDigestTest, SameSequenceSameDigest) {
  TraceDigest a;
  TraceDigest b;
  for (std::uint64_t v : {1ULL, 42ULL, 0ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    a.Mix(v);
    b.Mix(v);
  }
  a.MixDouble(3.25);
  b.MixDouble(3.25);
  a.MixString("tx");
  b.MixString("tx");
  EXPECT_EQ(a.value(), b.value());
}

TEST(TraceDigestTest, OrderSensitive) {
  TraceDigest ab;
  ab.Mix(1);
  ab.Mix(2);
  TraceDigest ba;
  ba.Mix(2);
  ba.Mix(1);
  EXPECT_NE(ab.value(), ba.value());
}

TEST(TraceDigestTest, StringBoundariesAreDelimited) {
  TraceDigest split_early;
  split_early.MixString("ab");
  split_early.MixString("c");
  TraceDigest split_late;
  split_late.MixString("a");
  split_late.MixString("bc");
  EXPECT_NE(split_early.value(), split_late.value());
}

TEST(TraceDigestTest, DoubleMixingIsBitExact) {
  // +0.0 and -0.0 compare equal but are different bit patterns: the digest
  // must distinguish them (a run producing -0.0 is not bit-identical).
  TraceDigest pos;
  pos.MixDouble(0.0);
  TraceDigest neg;
  neg.MixDouble(-0.0);
  EXPECT_NE(pos.value(), neg.value());

  TraceDigest nan;
  nan.MixDouble(std::numeric_limits<double>::quiet_NaN());
  TraceDigest inf;
  inf.MixDouble(std::numeric_limits<double>::infinity());
  EXPECT_NE(nan.value(), inf.value());
}

TEST(TraceDigestTest, SignedMixMatchesUnsignedBitPattern) {
  TraceDigest s;
  s.MixSigned(-1);
  TraceDigest u;
  u.Mix(0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(s.value(), u.value());
}

TEST(EventTimeAuditorTest, CountsEventsAndStaysOkOnMonotoneRun) {
  Simulator simulator;
  EventTimeAuditor auditor;
  auditor.Attach(simulator);
  for (TimeNs t : {5, 10, 10, 25}) {
    simulator.ScheduleOnce(t, EventPriority::kDefault, [] {});
  }
  simulator.Run();
  EXPECT_EQ(auditor.events_observed(), 4u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_EQ(auditor.last_time(), 25);
  EXPECT_TRUE(auditor.ok());
}

TEST(EventTimeAuditorTest, IgnoresCancelledEvents) {
  Simulator simulator;
  EventTimeAuditor auditor;
  auditor.Attach(simulator);
  Timer cancelled;
  cancelled.Bind(simulator, EventPriority::kDefault, [] {});
  cancelled.ArmAt(1);
  simulator.ScheduleOnce(2, EventPriority::kDefault, [] {});
  cancelled.Disarm();
  simulator.Run();
  EXPECT_EQ(auditor.events_observed(), 1u);
  EXPECT_TRUE(auditor.ok());
}

TEST(EventTimeAuditorTest, SurvivesMultipleRunSegments) {
  Simulator simulator;
  EventTimeAuditor auditor;
  auditor.Attach(simulator);
  simulator.ScheduleOnce(10, EventPriority::kDefault, [] {});
  simulator.RunUntil(50);
  simulator.ScheduleOnce(60, EventPriority::kDefault, [] {});
  simulator.Run();
  EXPECT_EQ(auditor.events_observed(), 2u);
  EXPECT_EQ(auditor.last_time(), 60);
  EXPECT_TRUE(auditor.ok());
}

}  // namespace
}  // namespace crn::sim
