// Format hardening for the CRNCKPT1 envelope (DESIGN.md §14): adversarial
// input — truncated, bit-flipped, wrong magic, future version, trailing
// garbage — must fail with an actionable latched error, never crash or
// read out of bounds. The exhaustive flip/truncation sweeps double as the
// asan/ubsan corpus: under the sanitizer presets every byte of every
// mutated blob is parsed and fully read.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.h"
#include "sim/checkpoint.h"

namespace crn::sim {
namespace {

// One blob with two sections exercising every typed write.
std::string MakeBlob() {
  StateWriter writer;
  writer.BeginSection("test.scalars");
  writer.WriteBool(true);
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEFU);
  writer.WriteU64(0x0123456789ABCDEFULL);
  writer.WriteI32(-7);
  writer.WriteI64(-1234567890123LL);
  writer.WriteDouble(-0.0);
  writer.WriteDouble(std::numeric_limits<double>::denorm_min());
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.EndSection();
  writer.BeginSection("test.strings");
  writer.WriteString("checkpoint");
  writer.WriteString("");
  writer.EndSection();
  return writer.Finish();
}

// Drains every field of a MakeBlob()-shaped blob. Used on mutated input,
// so it must terminate cleanly whatever the reader latched.
void ReadEverything(StateReader& reader) {
  if (reader.OpenSection("test.scalars")) {
    (void)reader.ReadBool();
    (void)reader.ReadU8();
    (void)reader.ReadU16();
    (void)reader.ReadU32();
    (void)reader.ReadU64();
    (void)reader.ReadI32();
    (void)reader.ReadI64();
    (void)reader.ReadDouble();
    (void)reader.ReadDouble();
    (void)reader.ReadDouble();
    reader.EndSection();
  }
  if (reader.OpenSection("test.strings")) {
    (void)reader.ReadString();
    (void)reader.ReadString();
    reader.EndSection();
  }
}

TEST(CheckpointFormatTest, RoundTripIsBitExact) {
  const std::string blob = MakeBlob();
  StateReader reader(blob);
  ASSERT_TRUE(reader.ok()) << reader.error();

  ASSERT_TRUE(reader.OpenSection("test.scalars"));
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_EQ(reader.ReadU8(), 0xAB);
  EXPECT_EQ(reader.ReadU16(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFU);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.ReadI32(), -7);
  EXPECT_EQ(reader.ReadI64(), -1234567890123LL);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.ReadDouble()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(reader.ReadDouble(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(reader.ReadDouble(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(reader.SectionBytesLeft(), 0U);
  reader.EndSection();

  // Sections open in any order — the table is random access by name.
  EXPECT_TRUE(reader.HasSection("test.strings"));
  ASSERT_TRUE(reader.OpenSection("test.strings"));
  EXPECT_EQ(reader.ReadString(), "checkpoint");
  EXPECT_EQ(reader.ReadString(), "");
  reader.EndSection();
  EXPECT_TRUE(reader.ok()) << reader.error();
}

TEST(CheckpointFormatTest, Crc32MatchesTheIeeeCheckValue) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(Crc32(""), 0x00000000U);
}

TEST(CheckpointFormatTest, WrongMagicIsRejectedWithAnActionableError) {
  std::string blob = MakeBlob();
  blob[0] = 'X';
  StateReader reader(blob);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("bad magic"), std::string::npos)
      << reader.error();
}

TEST(CheckpointFormatTest, FutureVersionIsRejectedWithAnActionableError) {
  std::string blob = MakeBlob();
  blob[8] = 2;  // version field follows the 8-byte magic, little-endian
  StateReader reader(blob);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("newer than this binary"), std::string::npos)
      << reader.error();
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  const std::string blob = MakeBlob();
  for (std::size_t length = 0; length < blob.size(); ++length) {
    StateReader reader(std::string_view(blob).substr(0, length));
    EXPECT_FALSE(reader.ok()) << "prefix of " << length << " bytes parsed";
    EXPECT_FALSE(reader.error().empty());
  }
}

TEST(CheckpointFormatTest, TrailingGarbageIsRejected) {
  const std::string blob = MakeBlob() + "x";
  StateReader reader(blob);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("trailing bytes"), std::string::npos)
      << reader.error();
}

TEST(CheckpointFormatTest, PayloadBitFlipsAreCaughtByTheSectionCrc) {
  const std::string pristine = MakeBlob();
  // First section payload starts after: magic(8) + version(4) + count(4) +
  // name_length(4) + name + payload_length(8) + crc(4).
  const std::string name = "test.scalars";
  const std::size_t payload_start = 8 + 4 + 4 + 4 + name.size() + 8 + 4;
  const std::size_t payload_size = 1 + 1 + 2 + 4 + 8 + 4 + 8 + 8 * 3;
  for (std::size_t i = payload_start; i < payload_start + payload_size; ++i) {
    for (const unsigned mask : {0x01U, 0x80U}) {
      std::string blob = pristine;
      blob[i] = static_cast<char>(static_cast<unsigned char>(blob[i]) ^ mask);
      StateReader reader(blob);
      EXPECT_FALSE(reader.ok()) << "flip at byte " << i << " parsed";
      EXPECT_NE(reader.error().find("CRC mismatch"), std::string::npos)
          << reader.error();
    }
  }
}

TEST(CheckpointFormatTest, EveryByteFlipFailsCleanly) {
  // The sanitizer corpus proper: whatever a single flipped byte does to the
  // envelope — bogus lengths, huge section counts, corrupt names — the
  // reader must latch an error or parse, and a full read must terminate
  // without touching memory out of bounds. (A flip in the version field can
  // legitimately downgrade to an accepted older version, so ok() readers
  // are allowed; they still must read cleanly.)
  const std::string pristine = MakeBlob();
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::string blob = pristine;
    blob[i] = static_cast<char>(static_cast<unsigned char>(blob[i]) ^ 0xFF);
    StateReader reader(blob);
    ReadEverything(reader);
    if (!reader.ok()) EXPECT_FALSE(reader.error().empty());
  }
}

TEST(CheckpointFormatTest, RandomGarbageNeverCrashesTheReader) {
  crn::Rng rng(0xC4EC4EC4E5EEDULL);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = static_cast<std::size_t>(rng.UniformInt(257));
    std::string blob(size, '\0');
    for (char& byte : blob) {
      byte = static_cast<char>(rng.UniformInt(256));
    }
    // Seed plausible prefixes half the time so parsing gets past the magic.
    if (round % 2 == 0 && blob.size() >= sizeof kCheckpointMagic) {
      blob.replace(0, sizeof kCheckpointMagic, kCheckpointMagic,
                   sizeof kCheckpointMagic);
    }
    StateReader reader(blob);
    ReadEverything(reader);
  }
}

TEST(CheckpointFormatTest, UnreadBytesAreASaveLoadLayoutMismatch) {
  StateWriter writer;
  writer.BeginSection("test.pair");
  writer.WriteU64(1);
  writer.WriteU64(2);
  writer.EndSection();
  const std::string blob = writer.Finish();

  StateReader reader(blob);
  ASSERT_TRUE(reader.OpenSection("test.pair"));
  (void)reader.ReadU64();
  reader.EndSection();
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("unread bytes"), std::string::npos)
      << reader.error();
}

TEST(CheckpointFormatTest, ReadingPastASectionEndLatchesAnError) {
  StateWriter writer;
  writer.BeginSection("test.short");
  writer.WriteU32(7);
  writer.EndSection();
  const std::string blob = writer.Finish();

  StateReader reader(blob);
  ASSERT_TRUE(reader.OpenSection("test.short"));
  EXPECT_EQ(reader.ReadU32(), 7U);
  EXPECT_EQ(reader.ReadU64(), 0U);  // past the end: zero, error latched
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("shorter than expected"), std::string::npos)
      << reader.error();
  EXPECT_EQ(reader.ReadU32(), 0U);  // every later read stays zero
}

TEST(CheckpointFormatTest, MissingSectionNamesTheIncompatibility) {
  const std::string blob = MakeBlob();
  StateReader reader(blob);
  EXPECT_FALSE(reader.HasSection("test.absent"));
  EXPECT_FALSE(reader.OpenSection("test.absent"));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("test.absent"), std::string::npos)
      << reader.error();
}

TEST(CheckpointFormatTest, OversizedStringLengthIsRejectedBeforeAllocating) {
  StateWriter writer;
  writer.BeginSection("test.string");
  writer.WriteU32(0x7FFFFFFFU);  // a string length field with no bytes behind
  writer.EndSection();
  const std::string blob = writer.Finish();

  StateReader reader(blob);
  ASSERT_TRUE(reader.OpenSection("test.string"));
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("oversized string"), std::string::npos)
      << reader.error();
}

}  // namespace
}  // namespace crn::sim
