#include "sim/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace crn::sim {
namespace {

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsTotal) {
  FlightRecorder recorder(4);
  for (std::uint64_t seq = 1; seq <= 7; ++seq) {
    recorder.Record(SchedAction::kArm, seq, static_cast<TimeNs>(seq * 10),
                    /*kind=*/0, /*owner=*/-1, /*parent_seq=*/0);
  }
  EXPECT_EQ(recorder.depth(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 7u);
  // Oldest-first view: seqs 4..7 survive.
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    EXPECT_EQ(recorder.At(i).seq, 4u + i);
  }
}

TEST(FlightRecorderTest, CountersCoverWholeRunNotJustTheRing) {
  FlightRecorder recorder(2);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    recorder.Record(SchedAction::kArm, seq, 0, /*kind=*/1, 0, 0);
    recorder.Record(SchedAction::kFire, seq, 0, /*kind=*/1, 0, 0);
  }
  recorder.Record(SchedAction::kDisarm, 9, 0, /*kind=*/2, 0, 0);
  ASSERT_GE(recorder.counters().size(), 3u);
  EXPECT_EQ(recorder.counters()[1].arms, 5);
  EXPECT_EQ(recorder.counters()[1].fires, 5);
  EXPECT_EQ(recorder.counters()[2].disarms, 1);
  EXPECT_EQ(recorder.size(), 2u);
}

TEST(FlightRecorderTest, SimulatorMirrorsKindNamesOnAttachAndRegister) {
  Simulator simulator;
  const std::uint16_t early = simulator.RegisterEventKind("test.early");
  FlightRecorder recorder(16);
  simulator.AttachFlightRecorder(&recorder);
  const std::uint16_t late = simulator.RegisterEventKind("test.late");
  ASSERT_GT(recorder.kind_names().size(), late);
  EXPECT_EQ(recorder.KindName(0), "unnamed");
  EXPECT_EQ(recorder.KindName(early), "test.early");
  EXPECT_EQ(recorder.KindName(late), "test.late");
  // Re-registering the same name returns the same id.
  EXPECT_EQ(simulator.RegisterEventKind("test.early"), early);
}

TEST(FlightRecorderTest, RecordsCausalParentAcrossTimerChain) {
  Simulator simulator;
  FlightRecorder recorder(64);
  simulator.AttachFlightRecorder(&recorder);

  Timer leaf;
  leaf.Bind(simulator, EventPriority::kDefault, "test.leaf", /*owner=*/7,
            [] {});
  simulator.ScheduleOnce(10, EventPriority::kDefault, "test.root", 3,
                         [&] { leaf.ArmAfter(5); });
  simulator.Run();

  // Expected sequence: arm(root) pre-run with parent 0, fire(root),
  // arm(leaf) with parent = root's seq, fire(leaf) with the same parent.
  ASSERT_EQ(recorder.size(), 4u);
  const FlightRecord& arm_root = recorder.At(0);
  const FlightRecord& fire_root = recorder.At(1);
  const FlightRecord& arm_leaf = recorder.At(2);
  const FlightRecord& fire_leaf = recorder.At(3);
  EXPECT_EQ(arm_root.action, SchedAction::kArm);
  EXPECT_EQ(arm_root.parent_seq, 0u);
  EXPECT_EQ(recorder.KindName(arm_root.kind), "test.root");
  EXPECT_EQ(arm_root.owner, 3);
  EXPECT_EQ(fire_root.action, SchedAction::kFire);
  EXPECT_EQ(fire_root.seq, arm_root.seq);
  EXPECT_EQ(arm_leaf.action, SchedAction::kArm);
  EXPECT_EQ(arm_leaf.parent_seq, fire_root.seq);
  EXPECT_EQ(recorder.KindName(arm_leaf.kind), "test.leaf");
  EXPECT_EQ(arm_leaf.owner, 7);
  EXPECT_EQ(fire_leaf.action, SchedAction::kFire);
  EXPECT_EQ(fire_leaf.seq, arm_leaf.seq);
  EXPECT_EQ(fire_leaf.parent_seq, fire_root.seq);
  EXPECT_EQ(fire_leaf.time, 15);
}

TEST(FlightRecorderTest, DisarmRecordsCancelledSeqWithCancellerAsParent) {
  Simulator simulator;
  FlightRecorder recorder(64);
  simulator.AttachFlightRecorder(&recorder);

  Timer victim;
  victim.Bind(simulator, EventPriority::kDefault, "test.victim", 1,
              [] { FAIL() << "disarmed timer fired"; });
  victim.ArmAt(100);
  simulator.ScheduleOnce(10, EventPriority::kDefault, "test.canceller", 2,
                         [&] { victim.Disarm(); });
  simulator.Run();

  ASSERT_EQ(recorder.size(), 4u);  // arm victim, arm canceller, fire, disarm
  const FlightRecord& arm_victim = recorder.At(0);
  const FlightRecord& fire_canceller = recorder.At(2);
  const FlightRecord& disarm = recorder.At(3);
  EXPECT_EQ(disarm.action, SchedAction::kDisarm);
  EXPECT_EQ(disarm.seq, arm_victim.seq);
  EXPECT_EQ(disarm.parent_seq, fire_canceller.seq);
  EXPECT_EQ(recorder.KindName(disarm.kind), "test.victim");
  EXPECT_EQ(recorder.counters()[disarm.kind].fires, 0);
}

TEST(FlightRecorderTest, RescheduleOfPendingTimerRecordsAsReschedule) {
  Simulator simulator;
  FlightRecorder recorder(64);
  simulator.AttachFlightRecorder(&recorder);

  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, "test.moved", 0, [] {});
  timer.ArmAt(100);
  timer.ArmAt(200);  // still pending: a reschedule, not a fresh arm
  simulator.Run();

  ASSERT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.At(0).action, SchedAction::kArm);
  EXPECT_EQ(recorder.At(1).action, SchedAction::kReschedule);
  EXPECT_EQ(recorder.At(2).action, SchedAction::kFire);
  EXPECT_EQ(recorder.At(2).time, 200);
  const std::uint16_t kind = recorder.At(0).kind;
  EXPECT_EQ(recorder.counters()[kind].arms, 1);
  EXPECT_EQ(recorder.counters()[kind].reschedules, 1);
  EXPECT_EQ(recorder.counters()[kind].fires, 1);
}

TEST(FlightRecorderTest, DumpRoundTripsThroughWriteAndRead) {
  Simulator simulator;
  FlightRecorder recorder(8);
  simulator.AttachFlightRecorder(&recorder);
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, "test.roundtrip", 5, [] {});
  for (int i = 1; i <= 6; ++i) {
    simulator.ScheduleOnce(i * 10, EventPriority::kDefault, "test.tick", 1,
                           [] {});
  }
  timer.ArmAt(100);
  simulator.Run();

  std::stringstream stream;
  recorder.WriteDump(stream);

  FlightRecorder::Dump dump;
  std::string error;
  ASSERT_TRUE(FlightRecorder::ReadDump(stream, &dump, &error)) << error;
  EXPECT_EQ(dump.depth, recorder.depth());
  EXPECT_EQ(dump.total_recorded, recorder.total_recorded());
  EXPECT_EQ(dump.kind_names, recorder.kind_names());
  ASSERT_EQ(dump.records.size(), recorder.size());
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    EXPECT_EQ(dump.records[i].seq, recorder.At(i).seq);
    EXPECT_EQ(dump.records[i].time, recorder.At(i).time);
    EXPECT_EQ(dump.records[i].parent_seq, recorder.At(i).parent_seq);
    EXPECT_EQ(dump.records[i].owner, recorder.At(i).owner);
    EXPECT_EQ(dump.records[i].kind, recorder.At(i).kind);
    EXPECT_EQ(dump.records[i].action, recorder.At(i).action);
  }
  ASSERT_EQ(dump.counters.size(), recorder.counters().size());
  for (std::size_t k = 0; k < dump.counters.size(); ++k) {
    EXPECT_EQ(dump.counters[k].arms, recorder.counters()[k].arms);
    EXPECT_EQ(dump.counters[k].fires, recorder.counters()[k].fires);
  }
}

TEST(FlightRecorderTest, ReadDumpRejectsBadMagicAndTruncation) {
  FlightRecorder::Dump dump;
  std::string error;
  std::stringstream bad_magic("NOTADUMP........");
  EXPECT_FALSE(FlightRecorder::ReadDump(bad_magic, &dump, &error));
  EXPECT_FALSE(error.empty());

  FlightRecorder recorder(4);
  recorder.Record(SchedAction::kArm, 1, 0, 0, 0, 0);
  std::stringstream stream;
  recorder.WriteDump(stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 5));
  error.clear();
  EXPECT_FALSE(FlightRecorder::ReadDump(truncated, &dump, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlightRecorderTest, WallProbeAttributesFireTimePerKind) {
  Simulator simulator;
  FlightRecorder recorder(16);
  double fake_wall = 0.0;
  recorder.set_wall_probe([&fake_wall] { return fake_wall += 0.25; });
  simulator.AttachFlightRecorder(&recorder);
  simulator.ScheduleOnce(10, EventPriority::kDefault, "test.timed", 0, [] {});
  simulator.Run();
  const std::uint16_t kind = recorder.At(recorder.size() - 1).kind;
  // Each fire takes two probe readings 0.25 apart.
  EXPECT_DOUBLE_EQ(recorder.fire_wall_seconds(kind), 0.25);
  EXPECT_DOUBLE_EQ(recorder.fire_wall_seconds(0), 0.0);
}

TEST(FlightRecorderTest, FormatTrailDecodesNewestRecords) {
  Simulator simulator;
  FlightRecorder recorder(16);
  simulator.AttachFlightRecorder(&recorder);
  simulator.ScheduleOnce(10, EventPriority::kDefault, "test.trail", 4, [] {});
  simulator.Run();
  const std::string trail = recorder.FormatTrail(2);
  EXPECT_NE(trail.find("flight recorder trail (last 2 of 2 recorded):"),
            std::string::npos);
  EXPECT_NE(trail.find("test.trail"), std::string::npos);
  EXPECT_NE(trail.find("fire"), std::string::npos);
  EXPECT_NE(trail.find("node=4"), std::string::npos);
}

TEST(FlightRecorderTest, ClearResetsRingButKeepsKindNames) {
  FlightRecorder recorder(4);
  recorder.SetKindNames({"unnamed", "test.kept"});
  recorder.Record(SchedAction::kArm, 1, 0, 1, 0, 0);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.KindName(1), "test.kept");
}

}  // namespace
}  // namespace crn::sim
