// Randomized lockstep A/B fuzz over the two scheduler backends: a calendar
// simulator and a reference-heap simulator each execute the *same* stream
// of schedule/cancel/reschedule operations (identical per-rig Rng seeds),
// and the test asserts they fire the same callbacks at the same times in
// the same order. The op stream is generated from inside the simulation, so
// any ordering divergence immediately desynchronizes the two op streams and
// amplifies into a log mismatch — there is no way for a backend bug in
// EventKey ordering, generation liveness, or bucket-cursor handling to stay
// hidden behind a coarse summary statistic.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace crn::sim {
namespace {

constexpr int kTimers = 64;
constexpr int kTicks = 1000;
constexpr int kOpsPerTick = 100;  // 100,000 ops per rig per seed
constexpr TimeNs kTickPeriod = kMillisecond;
constexpr TimeNs kMaxDelay = 8 * kMillisecond;

EventPriority PriorityFor(int index) {
  switch (index % 3) {
    case 0:
      return EventPriority::kSlotBoundary;
    case 1:
      return EventPriority::kDefault;
    default:
      return EventPriority::kTimerExpiry;
  }
}

// One simulator + its op-stream generator + its fire log. Two rigs with the
// same seed but different SchedulerKind must produce identical logs.
class FuzzRig {
 public:
  FuzzRig(SchedulerKind kind, std::uint64_t seed) : sim_(kind), rng_(seed) {
    timers_.resize(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      timers_[i].Bind(sim_, PriorityFor(i),
                      EventFn([this, i] { log_.emplace_back(i, sim_.now()); }));
    }
    driver_.Bind(sim_, EventPriority::kDefault, EventFn([this] { Tick(); }));
    driver_.Start(0, kTickPeriod);
  }

  void Run() { sim_.RunUntil((kTicks + 16) * kTickPeriod); }

  [[nodiscard]] const std::vector<std::pair<int, TimeNs>>& log() const {
    return log_;
  }
  [[nodiscard]] const Simulator& sim() const { return sim_; }

 private:
  void Tick() {
    if (++ticks_ > kTicks) {
      driver_.Stop();
      return;
    }
    for (int k = 0; k < kOpsPerTick; ++k) {
      const int i = static_cast<int>(rng_.UniformInt(kTimers));
      const TimeNs delay = static_cast<TimeNs>(rng_.UniformInt(kMaxDelay + 1));
      switch (rng_.UniformInt(8)) {
        case 0:
        case 1:
        case 2:  // arm (or O(1) reschedule if already pending)
          timers_[i].ArmAfter(delay);
          break;
        case 3:  // rescheduling twice in one op stresses generation bumps
          timers_[i].ArmAfter(delay);
          timers_[i].ArmAfter(delay / 2);
          break;
        case 4:
          timers_[i].Disarm();
          break;
        case 5:  // release + rebind recycles the arena slot mid-run
          timers_[i].Release();
          timers_[i].Bind(
              sim_, PriorityFor(i),
              EventFn([this, i] { log_.emplace_back(i, sim_.now()); }));
          break;
        default:  // fire-and-forget one-shot, logged with a distinct tag
          sim_.ScheduleOnceAfter(
              delay, PriorityFor(i),
              EventFn([this, i] { log_.emplace_back(kTimers + i, sim_.now()); }));
          break;
      }
    }
  }

  Simulator sim_;
  Rng rng_;
  std::vector<Timer> timers_;
  PeriodicTimer driver_;
  std::vector<std::pair<int, TimeNs>> log_;
  int ticks_ = 0;
};

TEST(SchedulerFuzzTest, CalendarMatchesReferencePopOrder) {
  for (const std::uint64_t seed : {0x5EEDADDCULL, 7ULL, 20260808ULL}) {
    FuzzRig calendar(SchedulerKind::kCalendar, seed);
    FuzzRig reference(SchedulerKind::kReference, seed);
    calendar.Run();
    reference.Run();

    ASSERT_GT(calendar.log().size(), 10'000U) << "seed " << seed;
    ASSERT_EQ(calendar.log().size(), reference.log().size()) << "seed " << seed;
    for (std::size_t e = 0; e < calendar.log().size(); ++e) {
      ASSERT_EQ(calendar.log()[e], reference.log()[e])
          << "seed " << seed << ": divergence at fired event " << e << " of "
          << calendar.log().size();
    }

    // The backends must agree on every externally visible queue statistic;
    // only bucket_resizes is calendar-internal.
    EXPECT_EQ(calendar.sim().pending_count(), reference.sim().pending_count())
        << "seed " << seed;
    EXPECT_EQ(calendar.sim().events_executed(), reference.sim().events_executed())
        << "seed " << seed;
    const SchedStats& cal = calendar.sim().sched_stats();
    const SchedStats& ref = reference.sim().sched_stats();
    EXPECT_EQ(cal.pushes, ref.pushes) << "seed " << seed;
    EXPECT_EQ(cal.pops, ref.pops) << "seed " << seed;
    EXPECT_EQ(cal.cancels, ref.cancels) << "seed " << seed;
    EXPECT_EQ(cal.stale_skips, ref.stale_skips) << "seed " << seed;
  }
}

}  // namespace
}  // namespace crn::sim
