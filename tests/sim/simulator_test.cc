#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace crn::sim {
namespace {

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.ScheduleAt(30, EventPriority::kDefault, [&] { fired.push_back(3); });
  simulator.ScheduleAt(10, EventPriority::kDefault, [&] { fired.push_back(1); });
  simulator.ScheduleAt(20, EventPriority::kDefault, [&] { fired.push_back(2); });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
  EXPECT_EQ(simulator.events_executed(), 3u);
}

TEST(SimulatorTest, PriorityBreaksTimeTies) {
  Simulator simulator;
  std::vector<int> fired;
  simulator.ScheduleAt(10, EventPriority::kTimerExpiry, [&] { fired.push_back(2); });
  simulator.ScheduleAt(10, EventPriority::kTransmissionEnd, [&] { fired.push_back(0); });
  simulator.ScheduleAt(10, EventPriority::kSlotBoundary, [&] { fired.push_back(1); });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, SequenceBreaksFullTies) {
  Simulator simulator;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(7, EventPriority::kDefault, [&fired, i] { fired.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  int fired = 0;
  const EventId id = simulator.ScheduleAt(10, EventPriority::kDefault, [&] { ++fired; });
  simulator.ScheduleAt(5, EventPriority::kDefault, [&] { ++fired; });
  EXPECT_TRUE(simulator.Cancel(id));
  EXPECT_FALSE(simulator.Cancel(id));  // second cancel is a no-op
  simulator.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelFromInsideEvent) {
  Simulator simulator;
  int fired = 0;
  const EventId victim = simulator.ScheduleAt(10, EventPriority::kDefault, [&] { ++fired; });
  simulator.ScheduleAt(10, EventPriority::kSlotBoundary,
                       [&] { simulator.Cancel(victim); });
  simulator.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator simulator;
  std::vector<TimeNs> times;
  std::function<void()> recurring = [&] {
    times.push_back(simulator.now());
    if (times.size() < 4) {
      simulator.ScheduleAfter(10, EventPriority::kDefault, recurring);
    }
  };
  simulator.ScheduleAt(0, EventPriority::kDefault, recurring);
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, 10, 20, 30}));
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(1, EventPriority::kDefault, [&] {
    ++fired;
    simulator.Stop();
  });
  simulator.ScheduleAt(2, EventPriority::kDefault, [&] { ++fired; });
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), 1);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  std::vector<TimeNs> times;
  for (TimeNs t : {5, 10, 15, 20}) {
    simulator.ScheduleAt(t, EventPriority::kDefault, [&, t] { times.push_back(t); });
  }
  simulator.RunUntil(15);
  EXPECT_EQ(times, (std::vector<TimeNs>{5, 10, 15}));  // deadline inclusive
  EXPECT_EQ(simulator.now(), 15);
  simulator.Run();
  EXPECT_EQ(times.back(), 20);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(100);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator simulator;
  simulator.ScheduleAt(10, EventPriority::kDefault, [] {});
  simulator.Run();
  EXPECT_THROW(simulator.ScheduleAt(5, EventPriority::kDefault, [] {}),
               ContractViolation);
}

TEST(SimulatorTest, EventLimitCatchesRunaway) {
  Simulator simulator;
  simulator.set_event_limit(100);
  std::function<void()> forever = [&] {
    simulator.ScheduleAfter(1, EventPriority::kDefault, forever);
  };
  simulator.ScheduleAt(0, EventPriority::kDefault, forever);
  EXPECT_THROW(simulator.Run(), ContractViolation);
}

TEST(SimulatorTest, PendingCountTracksCancellations) {
  Simulator simulator;
  const EventId a = simulator.ScheduleAt(1, EventPriority::kDefault, [] {});
  simulator.ScheduleAt(2, EventPriority::kDefault, [] {});
  EXPECT_EQ(simulator.pending_count(), 2u);
  simulator.Cancel(a);
  EXPECT_EQ(simulator.pending_count(), 1u);
}

TEST(SimulatorTest, RunUntilLazilySkipsCancelledEntries) {
  Simulator simulator;
  int fired = 0;
  const EventId cancelled = simulator.ScheduleAt(10, EventPriority::kDefault, [&] { ++fired; });
  simulator.ScheduleAt(20, EventPriority::kDefault, [&] { ++fired; });
  simulator.Cancel(cancelled);
  EXPECT_EQ(simulator.pending_count(), 1u);
  // The deadline crosses the cancelled entry: it must be consumed silently
  // (no callback, no events_executed tick) while bookkeeping stays exact.
  simulator.RunUntil(15);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(simulator.events_executed(), 0u);
  EXPECT_EQ(simulator.pending_count(), 1u);
  EXPECT_EQ(simulator.now(), 15);
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.pending_count(), 0u);
}

TEST(SimulatorTest, DoubleCancelCountsOnce) {
  Simulator simulator;
  const EventId a = simulator.ScheduleAt(5, EventPriority::kDefault, [] {});
  simulator.ScheduleAt(6, EventPriority::kDefault, [] {});
  EXPECT_TRUE(simulator.Cancel(a));
  EXPECT_FALSE(simulator.Cancel(a));  // second cancel must not double-count
  EXPECT_EQ(simulator.pending_count(), 1u);
  simulator.Run();
  EXPECT_EQ(simulator.events_executed(), 1u);
  EXPECT_EQ(simulator.pending_count(), 0u);
}

TEST(SimulatorTest, CancelAfterExecutionIsNoOp) {
  Simulator simulator;
  const EventId a = simulator.ScheduleAt(1, EventPriority::kDefault, [] {});
  simulator.Run();
  EXPECT_FALSE(simulator.Cancel(a));
  EXPECT_EQ(simulator.pending_count(), 0u);
}

TEST(SimulatorTest, EventObserversSeeEveryExecutedEventInOrder) {
  Simulator simulator;
  std::vector<TimeNs> observed;
  std::vector<TimeNs> fired;
  simulator.AddEventObserver([&](TimeNs now) { observed.push_back(now); });
  const EventId cancelled = simulator.ScheduleAt(5, EventPriority::kDefault, [] {});
  for (TimeNs t : {10, 20, 30}) {
    simulator.ScheduleAt(t, EventPriority::kDefault, [&, t] { fired.push_back(t); });
  }
  simulator.Cancel(cancelled);  // skipped entries must not reach observers
  simulator.Run();
  EXPECT_EQ(observed, (std::vector<TimeNs>{10, 20, 30}));
  EXPECT_EQ(observed, fired);
}

}  // namespace
}  // namespace crn::sim
