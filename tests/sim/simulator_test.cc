#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace crn::sim {
namespace {

// Every semantic contract is proven on both queue backends: the calendar
// queue must be behaviorally indistinguishable from the reference heap.
class SimulatorTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  Simulator simulator{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SimulatorTest,
    ::testing::Values(SchedulerKind::kCalendar, SchedulerKind::kReference),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      return std::string(ToString(info.param));
    });

TEST_P(SimulatorTest, FiresInTimeOrder) {
  std::vector<int> fired;
  simulator.ScheduleOnce(30, EventPriority::kDefault, [&] { fired.push_back(3); });
  simulator.ScheduleOnce(10, EventPriority::kDefault, [&] { fired.push_back(1); });
  simulator.ScheduleOnce(20, EventPriority::kDefault, [&] { fired.push_back(2); });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
  EXPECT_EQ(simulator.events_executed(), 3u);
}

TEST_P(SimulatorTest, PriorityBreaksTimeTies) {
  std::vector<int> fired;
  simulator.ScheduleOnce(10, EventPriority::kTimerExpiry, [&] { fired.push_back(2); });
  simulator.ScheduleOnce(10, EventPriority::kTransmissionEnd, [&] { fired.push_back(0); });
  simulator.ScheduleOnce(10, EventPriority::kSlotBoundary, [&] { fired.push_back(1); });
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST_P(SimulatorTest, SequenceBreaksFullTies) {
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleOnce(7, EventPriority::kDefault, [&fired, i] { fired.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(SimulatorTest, DisarmPreventsExecution) {
  int fired = 0;
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [&] { ++fired; });
  timer.ArmAt(10);
  simulator.ScheduleOnce(5, EventPriority::kDefault, [&] { ++fired; });
  EXPECT_TRUE(timer.Disarm());
  EXPECT_FALSE(timer.Disarm());  // second disarm is a no-op
  simulator.Run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorTest, DisarmFromInsideEvent) {
  int fired = 0;
  Timer victim;
  victim.Bind(simulator, EventPriority::kDefault, [&] { ++fired; });
  victim.ArmAt(10);
  simulator.ScheduleOnce(10, EventPriority::kSlotBoundary, [&] { victim.Disarm(); });
  simulator.Run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulatorTest, EventsCanScheduleEvents) {
  std::vector<TimeNs> times;
  simulator.ScheduleOnce(0, EventPriority::kDefault, [&] {
    times.push_back(simulator.now());
    // One-shot callbacks may schedule further one-shots.
    simulator.ScheduleOnceAfter(10, EventPriority::kDefault, [&] {
      times.push_back(simulator.now());
    });
  });
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, 10}));
}

TEST_P(SimulatorTest, TimerCallbackCanRearmItself) {
  std::vector<TimeNs> times;
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [&] {
    times.push_back(simulator.now());
    if (times.size() < 4) timer.ArmAfter(10);
  });
  timer.ArmAt(0);
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{0, 10, 20, 30}));
}

TEST_P(SimulatorTest, RearmReplacesPendingFire) {
  std::vector<TimeNs> times;
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault,
             [&] { times.push_back(simulator.now()); });
  timer.ArmAt(10);
  timer.ArmAt(25);  // implicit disarm of the t=10 fire
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{25}));
  EXPECT_EQ(simulator.events_executed(), 1u);
  EXPECT_EQ(simulator.sched_stats().cancels, 1);
}

TEST_P(SimulatorTest, TimerDestructionCancelsPendingFire) {
  int fired = 0;
  {
    Timer timer;
    timer.Bind(simulator, EventPriority::kDefault, [&] { ++fired; });
    timer.ArmAt(10);
    EXPECT_EQ(simulator.pending_count(), 1u);
  }
  EXPECT_EQ(simulator.pending_count(), 0u);
  simulator.Run();
  EXPECT_EQ(fired, 0);
}

TEST_P(SimulatorTest, TimerMoveTransfersOwnership) {
  std::vector<int> fired;
  std::vector<Timer> timers;
  for (int i = 0; i < 3; ++i) {
    Timer timer;
    timer.Bind(simulator, EventPriority::kDefault, [&fired, i] { fired.push_back(i); });
    timer.ArmAt(10 * (i + 1));
    timers.push_back(std::move(timer));  // move must keep the arm alive
  }
  // Swap-remove the middle timer (the active_tx_ idiom): its fire cancels.
  timers[1] = std::move(timers.back());
  timers.pop_back();
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

// A timer destroyed from inside its own callback (the transmission-teardown
// pattern: FinishTransmission destroys the Transmission holding the very
// end-timer that fired) must defer the slot release until the callback
// returns, and the slot must be cleanly reusable afterwards.
TEST_P(SimulatorTest, TimerDestroyedInsideOwnCallbackIsSafe) {
  struct Holder {
    Timer timer;
  };
  int fired = 0;
  auto holder = std::make_unique<Holder>();
  holder->timer.Bind(simulator, EventPriority::kDefault, [&] {
    ++fired;
    holder.reset();  // destroys the executing timer
  });
  holder->timer.ArmAt(5);
  simulator.Run();
  EXPECT_EQ(fired, 1);
  // The freed slot is recyclable.
  simulator.ScheduleOnce(10, EventPriority::kDefault, [&] { ++fired; });
  simulator.Run();
  EXPECT_EQ(fired, 2);
}

TEST_P(SimulatorTest, StopHaltsRun) {
  int fired = 0;
  simulator.ScheduleOnce(1, EventPriority::kDefault, [&] {
    ++fired;
    simulator.Stop();
  });
  simulator.ScheduleOnce(2, EventPriority::kDefault, [&] { ++fired; });
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), 1);
}

TEST_P(SimulatorTest, RunUntilStopsAtDeadline) {
  std::vector<TimeNs> times;
  for (TimeNs t : {5, 10, 15, 20}) {
    simulator.ScheduleOnce(t, EventPriority::kDefault, [&, t] { times.push_back(t); });
  }
  simulator.RunUntil(15);
  EXPECT_EQ(times, (std::vector<TimeNs>{5, 10, 15}));  // deadline inclusive
  EXPECT_EQ(simulator.now(), 15);
  simulator.Run();
  EXPECT_EQ(times.back(), 20);
}

TEST_P(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  simulator.RunUntil(100);
  EXPECT_EQ(simulator.now(), 100);
  // Scheduling resumes cleanly after the idle advance (the calendar cursor
  // must clamp back to the new event).
  std::vector<TimeNs> times;
  simulator.ScheduleOnce(150, EventPriority::kDefault,
                         [&] { times.push_back(simulator.now()); });
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{150}));
}

TEST_P(SimulatorTest, SchedulingInPastThrows) {
  simulator.ScheduleOnce(10, EventPriority::kDefault, [] {});
  simulator.Run();
  EXPECT_THROW(simulator.ScheduleOnce(5, EventPriority::kDefault, [] {}),
               ContractViolation);
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [] {});
  EXPECT_THROW(timer.ArmAt(5), ContractViolation);
}

TEST_P(SimulatorTest, EventLimitCatchesRunaway) {
  simulator.set_event_limit(100);
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [&] { timer.ArmAfter(1); });
  timer.ArmAt(0);
  EXPECT_THROW(simulator.Run(), ContractViolation);
}

TEST_P(SimulatorTest, PendingCountTracksCancellations) {
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [] {});
  timer.ArmAt(1);
  simulator.ScheduleOnce(2, EventPriority::kDefault, [] {});
  EXPECT_EQ(simulator.pending_count(), 2u);
  timer.Disarm();
  EXPECT_EQ(simulator.pending_count(), 1u);
}

TEST_P(SimulatorTest, PendingCountExactUnderCancelAfterPopInterleavings) {
  // Disarm an already-popped-but-stale sibling entry mid-run: the count
  // must stay exact (this was the old core's queue-minus-cancelled skew).
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [] {});
  std::vector<std::size_t> pending_seen;
  timer.ArmAt(10);
  timer.ArmAt(20);  // the t=10 entry is now stale but still queued
  simulator.ScheduleOnce(15, EventPriority::kDefault, [&] {
    // The stale t=10 entry has already been popped and skipped here.
    pending_seen.push_back(simulator.pending_count());
    timer.Disarm();
    pending_seen.push_back(simulator.pending_count());
  });
  simulator.Run();
  EXPECT_EQ(pending_seen, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(simulator.pending_count(), 0u);
  EXPECT_EQ(simulator.events_executed(), 1u);
}

TEST_P(SimulatorTest, RunUntilLazilySkipsCancelledEntries) {
  int fired = 0;
  Timer cancelled;
  cancelled.Bind(simulator, EventPriority::kDefault, [&] { ++fired; });
  cancelled.ArmAt(10);
  simulator.ScheduleOnce(20, EventPriority::kDefault, [&] { ++fired; });
  cancelled.Disarm();
  EXPECT_EQ(simulator.pending_count(), 1u);
  // The deadline crosses the cancelled entry: it must be consumed silently
  // (no callback, no events_executed tick) while bookkeeping stays exact.
  simulator.RunUntil(15);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(simulator.events_executed(), 0u);
  EXPECT_EQ(simulator.pending_count(), 1u);
  EXPECT_EQ(simulator.now(), 15);
  simulator.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.pending_count(), 0u);
}

TEST_P(SimulatorTest, DisarmAfterFireIsNoOp) {
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [] {});
  timer.ArmAt(1);
  simulator.Run();
  EXPECT_FALSE(timer.Disarm());
  EXPECT_EQ(simulator.pending_count(), 0u);
  EXPECT_EQ(simulator.sched_stats().cancels, 0);
}

TEST_P(SimulatorTest, EventObserversSeeEveryExecutedEventInOrder) {
  std::vector<TimeNs> observed;
  std::vector<TimeNs> fired;
  simulator.AddEventObserver([&](TimeNs now) { observed.push_back(now); });
  Timer cancelled;
  cancelled.Bind(simulator, EventPriority::kDefault, [] {});
  cancelled.ArmAt(5);
  for (TimeNs t : {10, 20, 30}) {
    simulator.ScheduleOnce(t, EventPriority::kDefault, [&, t] { fired.push_back(t); });
  }
  cancelled.Disarm();  // skipped entries must not reach observers
  simulator.Run();
  EXPECT_EQ(observed, (std::vector<TimeNs>{10, 20, 30}));
  EXPECT_EQ(observed, fired);
}

TEST_P(SimulatorTest, ObserversMustNotScheduleOrCancel) {
  simulator.AddEventObserver([&](TimeNs) {
    simulator.ScheduleOnce(50, EventPriority::kDefault, [] {});
  });
  simulator.ScheduleOnce(1, EventPriority::kDefault, [] {});
  EXPECT_THROW(simulator.Run(), ContractViolation);
}

TEST_P(SimulatorTest, PeriodicTimerFiresEveryPeriod) {
  std::vector<TimeNs> times;
  PeriodicTimer periodic;
  periodic.Bind(simulator, EventPriority::kSlotBoundary, [&] {
    times.push_back(simulator.now());
    if (times.size() == 4) periodic.Stop();
  });
  periodic.Start(5, 10);
  simulator.Run();
  EXPECT_EQ(times, (std::vector<TimeNs>{5, 15, 25, 35}));
  EXPECT_FALSE(periodic.running());
  // Stop() from inside the callback consumed no sequence number: nothing
  // is pending and the queue drained.
  EXPECT_EQ(simulator.pending_count(), 0u);
}

TEST_P(SimulatorTest, PeriodicTimerRearmsAfterCallbackBody) {
  // An event the callback schedules for the *next* boundary instant (same
  // time, same priority) must fire before the next periodic occurrence:
  // the re-arm happens after the callback body, so it draws a later
  // sequence number.
  std::vector<std::string> order;
  PeriodicTimer periodic;
  periodic.Bind(simulator, EventPriority::kDefault, [&] {
    order.push_back("tick@" + std::to_string(simulator.now()));
    if (simulator.now() == 0) {
      simulator.ScheduleOnceAfter(10, EventPriority::kDefault, [&] {
        order.push_back("oneshot@" + std::to_string(simulator.now()));
      });
    }
    if (simulator.now() >= 10) periodic.Stop();
  });
  periodic.Start(0, 10);
  simulator.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"tick@0", "oneshot@10", "tick@10"}));
}

TEST_P(SimulatorTest, SchedStatsBalance) {
  Timer timer;
  timer.Bind(simulator, EventPriority::kDefault, [] {});
  timer.ArmAt(10);
  timer.ArmAt(20);  // one implicit cancel
  simulator.ScheduleOnce(30, EventPriority::kDefault, [] {});
  simulator.Run();
  const SchedStats& stats = simulator.sched_stats();
  EXPECT_EQ(stats.pushes, 3);
  EXPECT_EQ(stats.pops, 2);
  EXPECT_EQ(stats.cancels, 1);
  // At drain every push was either fired or skipped as stale.
  EXPECT_EQ(stats.pushes, stats.pops + stats.stale_skips);
  EXPECT_EQ(stats.cancels, stats.stale_skips);
}

TEST_P(SimulatorTest, HighChurnKeepsExactOrderAcrossResizes) {
  // Enough spread-out events to force calendar-bucket growth and shrink;
  // order must stay exact throughout.
  std::vector<TimeNs> fired;
  std::vector<TimeNs> expected;
  for (int i = 0; i < 1000; ++i) {
    const TimeNs t = (i * 7919) % 10000;
    expected.push_back(t);
    simulator.ScheduleOnce(t, EventPriority::kDefault,
                           [&fired, this] { fired.push_back(simulator.now()); });
  }
  std::sort(expected.begin(), expected.end());
  simulator.Run();
  EXPECT_EQ(fired, expected);
  if (GetParam() == SchedulerKind::kCalendar) {
    EXPECT_GT(simulator.sched_stats().bucket_resizes, 0);
  }
}

TEST_P(SimulatorTest, SparseHorizonsStayOrdered) {
  // Events separated by ~hours of simulated time exercise the calendar's
  // sparse-horizon cursor jump.
  std::vector<TimeNs> fired;
  for (TimeNs t : {TimeNs{7'200'000'000'000}, TimeNs{1'000}, TimeNs{3'600'000'000'000}, TimeNs{0}}) {
    simulator.ScheduleOnce(t, EventPriority::kDefault,
                           [&fired, this] { fired.push_back(simulator.now()); });
  }
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<TimeNs>{0, 1'000, 3'600'000'000'000,
                                        7'200'000'000'000}));
}

TEST(EventFnTest, InlineAndHeapCapturesBothInvoke) {
  int calls = 0;
  EventFn small([&calls] { ++calls; });
  small();
  EXPECT_EQ(calls, 1);

  // A capture far beyond the inline buffer takes the heap path.
  std::array<std::uint64_t, 32> big_state{};
  big_state[31] = 42;
  int observed = 0;
  EventFn big([big_state, &observed] {
    observed = static_cast<int>(big_state[31]);
  });
  static_assert(sizeof(big_state) > EventFn::kInlineSize);
  big();
  EXPECT_EQ(observed, 42);
}

TEST(EventFnTest, MovePreservesStateAndEmptiesSource) {
  auto state = std::make_unique<int>(7);
  int observed = 0;
  EventFn fn([state = std::move(state), &observed] { observed = *state; });
  EventFn moved(std::move(fn));
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(observed, 7);
}

}  // namespace
}  // namespace crn::sim
