#include "spectrum/interference_field.h"

#include <gtest/gtest.h>

#include <vector>

#include "geom/vec2.h"

namespace crn::spectrum {
namespace {

using geom::Vec2;

std::vector<Vec2> SuPositions() {
  return {{0.0, 0.0}, {3.0, 4.0}, {10.0, 0.0}, {7.0, 7.0}, {1.0, 9.0}};
}

std::vector<Vec2> PuPositions() { return {{2.0, 2.0}, {8.0, 1.0}, {5.0, 9.0}}; }

InterferenceField MakeField(SirEngine engine, double alpha = 4.0) {
  return InterferenceField(PathLoss(alpha), engine, SuPositions(), 1.5,
                           PuPositions(), 6.0);
}

TEST(PairGainCacheTest, GainMatchesDirectBitForBit) {
  for (const double alpha : {4.0, 3.5, 2.7}) {
    PairGainCache cache(PathLoss(alpha), 2.5, SuPositions(), SuPositions());
    FieldWork work;
    for (std::int32_t tx = 0; tx < 5; ++tx) {
      for (std::int32_t rx = 0; rx < 5; ++rx) {
        // EXPECT_EQ, not NEAR: the cache must hold the exact double the
        // direct expression produces — that is the whole determinism story.
        EXPECT_EQ(cache.Gain(tx, rx, work), cache.Direct(tx, rx))
            << "alpha=" << alpha << " tx=" << tx << " rx=" << rx;
      }
    }
  }
}

TEST(PairGainCacheTest, CountsMissesThenHits) {
  PairGainCache cache(PathLoss(4.0), 1.0, SuPositions(), SuPositions());
  FieldWork work;
  (void)cache.Gain(0, 1, work);
  (void)cache.Gain(2, 1, work);
  EXPECT_EQ(work.gain_cache_misses, 2);
  EXPECT_EQ(work.gain_cache_hits, 0);
  (void)cache.Gain(0, 1, work);
  (void)cache.Gain(2, 1, work);
  EXPECT_EQ(work.gain_cache_misses, 2);
  EXPECT_EQ(work.gain_cache_hits, 2);
}

TEST(PairGainCacheTest, RowsMaterializeLazily) {
  PairGainCache cache(PathLoss(4.0), 1.0, SuPositions(), SuPositions());
  FieldWork work;
  EXPECT_EQ(cache.allocated_rows(), 0);
  (void)cache.Gain(0, 3, work);
  EXPECT_EQ(cache.allocated_rows(), 1);
  (void)cache.Gain(1, 3, work);
  EXPECT_EQ(cache.allocated_rows(), 1);
  (void)cache.Gain(1, 0, work);
  EXPECT_EQ(cache.allocated_rows(), 2);
}

TEST(PairGainCacheTest, RejectsNonPositivePower) {
  EXPECT_THROW(PairGainCache(PathLoss(4.0), 0.0, SuPositions(), SuPositions()),
               ContractViolation);
}

TEST(InterferenceFieldTest, EnginesAgreeOnEveryGain) {
  InterferenceField cached = MakeField(SirEngine::kCached);
  InterferenceField direct = MakeField(SirEngine::kDirect);
  for (std::int32_t tx = 0; tx < 5; ++tx) {
    for (std::int32_t rx = 0; rx < 5; ++rx) {
      EXPECT_EQ(cached.SuGain(tx, rx), direct.SuGain(tx, rx));
    }
  }
  for (std::int32_t pu = 0; pu < 3; ++pu) {
    for (std::int32_t rx = 0; rx < 5; ++rx) {
      EXPECT_EQ(cached.PuGain(pu, rx), direct.PuGain(pu, rx));
    }
  }
}

TEST(InterferenceFieldTest, DirectEngineBypassesCache) {
  InterferenceField field = MakeField(SirEngine::kDirect);
  (void)field.SuGain(0, 1);
  (void)field.SuGain(0, 1);
  (void)field.PuGain(2, 4);
  EXPECT_EQ(field.work().gain_cache_hits, 0);
  EXPECT_EQ(field.work().gain_cache_misses, 0);
  EXPECT_EQ(field.work().sir_terms_evaluated, 3);
  EXPECT_EQ(field.su_rows_allocated(), 0);
}

TEST(InterferenceFieldTest, CachedEngineCountsOnlyMissesAsTerms) {
  InterferenceField field = MakeField(SirEngine::kCached);
  (void)field.SuGain(0, 1);
  (void)field.SuGain(0, 1);
  (void)field.SuGain(0, 1);
  EXPECT_EQ(field.work().sir_terms_evaluated, 1);
  EXPECT_EQ(field.work().gain_cache_misses, 1);
  EXPECT_EQ(field.work().gain_cache_hits, 2);
}

TEST(InterferenceFieldTest, PuInterferenceMemoIsBitExact) {
  InterferenceField field = MakeField(SirEngine::kCached);
  InterferenceField reference = MakeField(SirEngine::kDirect);
  const std::vector<std::int32_t> active{0, 2};
  EXPECT_TRUE(field.NotePuSample(active));
  EXPECT_TRUE(reference.NotePuSample(active));

  const double first = field.PuInterference(1, active);
  EXPECT_EQ(first, reference.PuInterference(1, active));
  EXPECT_EQ(field.work().pu_partials_reused, 0);

  const double again = field.PuInterference(1, active);
  EXPECT_EQ(again, first);
  EXPECT_EQ(field.work().pu_partials_reused, 1);

  // A different receiver fills its own memo slot.
  const double other = field.PuInterference(3, active);
  EXPECT_EQ(other, reference.PuInterference(3, active));
  EXPECT_EQ(field.work().pu_partials_reused, 1);
}

TEST(InterferenceFieldTest, PuSetChangeInvalidatesMemo) {
  InterferenceField field = MakeField(SirEngine::kCached);
  const std::vector<std::int32_t> first{0, 1};
  field.NotePuSample(first);
  const double before = field.PuInterference(2, first);
  const std::vector<std::int32_t> second{1};
  EXPECT_TRUE(field.NotePuSample(second));
  const double after = field.PuInterference(2, second);
  EXPECT_NE(before, after);
  EXPECT_EQ(field.work().pu_partials_reused, 0);
  // The new memo serves the new set.
  EXPECT_EQ(field.PuInterference(2, second), after);
  EXPECT_EQ(field.work().pu_partials_reused, 1);
}

// The dirty-set epoch semantics behind the MAC's reevaluation triggers:
// tx start bumps change_epoch only, tx end/abort bumps shrink_epoch only,
// and a slot-boundary PU resample bumps change + pu only when the active
// set actually changed.
TEST(InterferenceFieldTest, EpochSemantics) {
  InterferenceField field = MakeField(SirEngine::kCached);
  EXPECT_EQ(field.change_epoch(), 0);
  EXPECT_EQ(field.pu_epoch(), 0);
  EXPECT_EQ(field.shrink_epoch(), 0);

  field.NoteSuInterfererAdded();  // a transmission started
  EXPECT_EQ(field.change_epoch(), 1);
  EXPECT_EQ(field.pu_epoch(), 0);
  EXPECT_EQ(field.shrink_epoch(), 0);

  field.NoteSuInterfererRemoved();  // it ended (or aborted)
  EXPECT_EQ(field.change_epoch(), 1);
  EXPECT_EQ(field.shrink_epoch(), 1);

  // First sample with no active PUs matches the initial empty set: no bump.
  EXPECT_FALSE(field.NotePuSample({}));
  EXPECT_EQ(field.change_epoch(), 1);
  EXPECT_EQ(field.pu_epoch(), 0);

  EXPECT_TRUE(field.NotePuSample({1, 2}));
  EXPECT_EQ(field.change_epoch(), 2);
  EXPECT_EQ(field.pu_epoch(), 1);

  // Resampling the identical set is not a change.
  EXPECT_FALSE(field.NotePuSample({1, 2}));
  EXPECT_EQ(field.change_epoch(), 2);
  EXPECT_EQ(field.pu_epoch(), 1);

  EXPECT_TRUE(field.NotePuSample({}));
  EXPECT_EQ(field.change_epoch(), 3);
  EXPECT_EQ(field.pu_epoch(), 2);
}

TEST(InterferenceFieldTest, EmptyPuDeploymentIsUsable) {
  InterferenceField field(PathLoss(4.0), SirEngine::kCached, SuPositions(), 1.0,
                          {}, 0.0);
  EXPECT_EQ(field.PuInterference(0, {}), 0.0);
  EXPECT_EQ(field.work().sir_terms_evaluated, 0);
}

}  // namespace
}  // namespace crn::spectrum
