#include "spectrum/interference.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crn::spectrum {
namespace {

using geom::Vec2;

TEST(PathLossTest, KnownValuesAlphaFour) {
  const PathLoss loss(4.0);
  EXPECT_DOUBLE_EQ(loss.ReceivedPower(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(loss.ReceivedPower(10.0, 2.0), 10.0 / 16.0);
  EXPECT_DOUBLE_EQ(loss.ReceivedPower(16.0, 10.0), 16.0 * 1e-4);
}

TEST(PathLossTest, KnownValuesAlphaThree) {
  const PathLoss loss(3.0);
  EXPECT_NEAR(loss.ReceivedPower(8.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(loss.ReceivedPower(27.0, 3.0), 1.0, 1e-12);
}

TEST(PathLossTest, SquaredDistanceFormAgreesWithPlain) {
  for (double alpha : {2.5, 3.0, 3.7, 4.0, 4.5}) {
    const PathLoss loss(alpha);
    for (double d : {0.5, 1.0, 7.3, 42.0}) {
      EXPECT_NEAR(loss.ReceivedPowerSquared(5.0, d * d), loss.ReceivedPower(5.0, d),
                  1e-12 * loss.ReceivedPower(5.0, d))
          << "alpha=" << alpha << " d=" << d;
    }
  }
}

TEST(PathLossTest, ClampsTinyDistances) {
  const PathLoss loss(4.0);
  EXPECT_EQ(loss.ReceivedPower(1.0, 0.0), loss.ReceivedPower(1.0, PathLoss::kMinDistance));
  EXPECT_TRUE(std::isfinite(loss.ReceivedPower(1.0, 0.0)));
}

TEST(PathLossTest, RejectsAlphaAtOrBelowTwo) {
  EXPECT_THROW(PathLoss(2.0), ContractViolation);
  EXPECT_THROW(PathLoss(1.5), ContractViolation);
}

TEST(SirEvaluatorTest, NoInterferersGivesInfiniteSir) {
  const SirEvaluator sir{PathLoss(4.0)};
  const double value = sir.ComputeSir({0, 0}, 10.0, {5, 0}, {});
  EXPECT_TRUE(std::isinf(value));
}

TEST(SirEvaluatorTest, HandComputedSir) {
  // Signal: P=10 at distance 10 -> 10*10^-4 = 1e-3.
  // Interference: one transmitter P=10 at distance 20 from the receiver
  // -> 10*20^-4 = 6.25e-5. SIR = 16.
  const SirEvaluator sir{PathLoss(4.0)};
  const std::vector<ActiveTransmitter> interferers{{{30.0, 0.0}, 10.0}};
  const double value = sir.ComputeSir({0, 0}, 10.0, {10.0, 0.0}, interferers);
  EXPECT_NEAR(value, 16.0, 1e-9);
}

TEST(SirEvaluatorTest, InterferenceAggregates) {
  const SirEvaluator sir{PathLoss(4.0)};
  const std::vector<ActiveTransmitter> one{{{30.0, 0.0}, 10.0}};
  const std::vector<ActiveTransmitter> two{{{30.0, 0.0}, 10.0}, {{-10.0, 0.0}, 10.0}};
  const Vec2 rx{10.0, 0.0};
  EXPECT_GT(sir.AggregateInterference(rx, two), sir.AggregateInterference(rx, one));
  EXPECT_LT(sir.ComputeSir({0, 0}, 10.0, rx, two), sir.ComputeSir({0, 0}, 10.0, rx, one));
}

TEST(SirEvaluatorTest, ThresholdPredicate) {
  const SirEvaluator sir{PathLoss(4.0)};
  const std::vector<ActiveTransmitter> interferers{{{30.0, 0.0}, 10.0}};
  // SIR is 16 (above): succeeds at eta=10 (10 dB), fails at eta=20.
  EXPECT_TRUE(sir.TransmissionSucceeds({0, 0}, 10.0, {10.0, 0.0},
                                       SirThreshold::FromLinear(10.0), interferers));
  EXPECT_FALSE(sir.TransmissionSucceeds({0, 0}, 10.0, {10.0, 0.0},
                                        SirThreshold::FromLinear(20.0), interferers));
}

TEST(SirEvaluatorTest, EquationTwoOfPaper) {
  // Reproduce eq. (2): mixed PU/SU interference with distinct powers.
  const SirEvaluator sir{PathLoss(3.0)};
  const std::vector<ActiveTransmitter> interferers{
      {{0.0, 10.0}, 20.0},  // a PU with P_p = 20
      {{0.0, -5.0}, 5.0},   // an SU with P_s = 5
  };
  const Vec2 tx{0, 0};
  const Vec2 rx{2.0, 0.0};
  const double signal = 5.0 * std::pow(2.0, -3.0);
  const double i_pu = 20.0 * std::pow(std::hypot(2.0, 10.0), -3.0);
  const double i_su = 5.0 * std::pow(std::hypot(2.0, 5.0), -3.0);
  EXPECT_NEAR(sir.ComputeSir(tx, 5.0, rx, interferers), signal / (i_pu + i_su), 1e-12);
}

}  // namespace
}  // namespace crn::spectrum
