// Unit tests for the crn_analyze include-graph pass: layer ranks, upward
// include rejection, and cycle detection.
#include "crn_analyze/include_graph.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {
namespace {

SourceFile File(const std::string& logical_path, const std::string& content) {
  return MakeSourceFile(logical_path, content);
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++count;
  }
  return count;
}

TEST(IncludeGraphTest, LayerRanksFollowTheDag) {
  EXPECT_EQ(LayerRank("src/common/rng.h"), 0);
  EXPECT_EQ(LayerRank("src/geom/vec2.h"), 1);
  EXPECT_EQ(LayerRank("src/sim/time.h"), 1);
  EXPECT_EQ(LayerRank("src/graph/repair.h"), 2);
  EXPECT_EQ(LayerRank("src/mac/packet.h"), 3);
  EXPECT_EQ(LayerRank("src/obs/metrics.h"), 4);
  EXPECT_EQ(LayerRank("src/faults/fault_plan.h"), 5);
  EXPECT_EQ(LayerRank("src/core/scenario.h"), 6);
  EXPECT_EQ(LayerRank("src/harness/table.h"), 7);
  // Not a src/ layer: unconstrained.
  EXPECT_FALSE(LayerRank("tests/mac/packet_test.cc").has_value());
  EXPECT_FALSE(LayerRank("src/unknown_layer/x.h").has_value());
}

TEST(IncludeGraphTest, DownwardAndSameRankIncludesAreClean) {
  const std::vector<SourceFile> files = {
      File("src/mac/packet.h",
           "#include \"common/rng.h\"\n#include \"sim/time.h\"\n"
           "#include \"routing/table.h\"\n#include <vector>\n"),
      File("src/common/rng.h", "#include <cstdint>\n"),
      File("src/sim/time.h", ""),
      File("src/routing/table.h", ""),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  EXPECT_EQ(CountRule(findings, "layering"), 0);
  EXPECT_EQ(CountRule(findings, "include-cycle"), 0);
}

TEST(IncludeGraphTest, UpwardIncludeIsALayeringViolation) {
  const std::vector<SourceFile> files = {
      File("src/geom/vec2.h", "#include \"mac/packet.h\"\n"),
      File("src/mac/packet.h", ""),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  ASSERT_EQ(CountRule(findings, "layering"), 1);
  const Finding& f = findings.front();
  EXPECT_EQ(f.path, "src/geom/vec2.h");
  EXPECT_EQ(f.line, 1);
  EXPECT_EQ(f.fingerprint, "include=mac/packet.h");
}

TEST(IncludeGraphTest, UnknownLayerTargetIsFlagged) {
  const std::vector<SourceFile> files = {
      File("src/mac/packet.h", "#include \"vendor/blob.h\"\n"),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  EXPECT_EQ(CountRule(findings, "layering"), 1);
}

TEST(IncludeGraphTest, TwoFileCycleIsDetectedOnce) {
  const std::vector<SourceFile> files = {
      File("src/geom/a.h", "#include \"geom/b.h\"\n"),
      File("src/geom/b.h", "#include \"geom/a.h\"\n"),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  ASSERT_EQ(CountRule(findings, "include-cycle"), 1);
  const Finding& f = findings.front();
  // Reported on the lexicographically smallest member, with the chain as
  // its stable fingerprint.
  EXPECT_EQ(f.path, "src/geom/a.h");
  EXPECT_NE(f.fingerprint.find("cycle="), std::string::npos);
  EXPECT_NE(f.fingerprint.find("geom/a.h"), std::string::npos);
  EXPECT_NE(f.fingerprint.find("geom/b.h"), std::string::npos);
}

TEST(IncludeGraphTest, LongerCycleThroughThreeFilesIsDetected) {
  const std::vector<SourceFile> files = {
      File("src/mac/x.h", "#include \"mac/y.h\"\n"),
      File("src/mac/y.h", "#include \"mac/z.h\"\n"),
      File("src/mac/z.h", "#include \"mac/x.h\"\n"),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  EXPECT_EQ(CountRule(findings, "include-cycle"), 1);
}

TEST(IncludeGraphTest, SharedDiamondIsNotACycle) {
  const std::vector<SourceFile> files = {
      File("src/mac/top.h", "#include \"mac/left.h\"\n#include \"mac/right.h\"\n"),
      File("src/mac/left.h", "#include \"common/base.h\"\n"),
      File("src/mac/right.h", "#include \"common/base.h\"\n"),
      File("src/common/base.h", ""),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  EXPECT_EQ(CountRule(findings, "include-cycle"), 0);
  EXPECT_EQ(CountRule(findings, "layering"), 0);
}

TEST(IncludeGraphTest, TestsAndBenchAreUnconstrained) {
  const std::vector<SourceFile> files = {
      File("tests/geom/vec2_test.cc", "#include \"harness/table.h\"\n"),
      File("bench/sweep_bench.cc", "#include \"core/scenario.h\"\n"),
      File("src/harness/table.h", ""),
      File("src/core/scenario.h", ""),
  };
  const std::vector<Finding> findings = RunIncludeGraphPass(files);
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace crn::analyze
