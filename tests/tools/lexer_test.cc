// Unit tests for the crn_analyze tokenizer: the constructs the legacy
// line-regex stripper got wrong (multi-line raw strings, spliced comments)
// plus the lexical corners rules depend on (digit separators, include
// extraction).
#include "crn_analyze/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace crn::analyze {
namespace {

std::vector<std::string> IdentifierTexts(const LexResult& lex) {
  std::vector<std::string> out;
  for (const Token& token : lex.tokens) {
    if (token.kind == TokenKind::kIdentifier) out.push_back(token.text);
  }
  return out;
}

bool ScrubbedContains(const LexResult& lex, const std::string& needle) {
  for (const std::string& line : lex.scrubbed) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(LexerTest, RawStringBodySpanningLinesIsBlanked) {
  const std::string content =
      "auto s = R\"doc(\n"
      "  rand(); float x; std::cout << 1;\n"
      ")doc\";\n"
      "int after = 0;\n";
  const LexResult lex = Lex(content);
  EXPECT_FALSE(ScrubbedContains(lex, "rand"));
  EXPECT_FALSE(ScrubbedContains(lex, "float"));
  EXPECT_FALSE(ScrubbedContains(lex, "cout"));
  // Code after the literal closes is visible again, on the right line (the
  // trailing newline pads one final empty entry).
  ASSERT_EQ(lex.scrubbed.size(), 5u);
  EXPECT_NE(lex.scrubbed[3].find("int after"), std::string::npos);
}

TEST(LexerTest, RawStringDelimiterMismatchDoesNotCloseEarly) {
  // `)"` appears inside the body but the delimiter is `x`, so the literal
  // runs to `)x"`.
  const std::string content = "auto s = R\"x(not closed: )\" still inside)x\"; int ok;\n";
  const LexResult lex = Lex(content);
  EXPECT_FALSE(ScrubbedContains(lex, "still inside"));
  EXPECT_TRUE(ScrubbedContains(lex, "int ok"));
}

TEST(LexerTest, EncodingPrefixedRawStringIsRecognized) {
  const std::string content = "auto s = u8R\"(rand() inside)\"; int ok;\n";
  const LexResult lex = Lex(content);
  EXPECT_FALSE(ScrubbedContains(lex, "rand"));
  EXPECT_TRUE(ScrubbedContains(lex, "int ok"));
}

TEST(LexerTest, DigitSeparatorStaysOneNumberToken) {
  const std::string content = "constexpr long n = 1'000'000; char c = 'x';\n";
  const LexResult lex = Lex(content);
  int numbers = 0;
  int char_literals = 0;
  for (const Token& token : lex.tokens) {
    if (token.kind == TokenKind::kNumber) {
      ++numbers;
      EXPECT_EQ(token.text, "1'000'000");
    }
    if (token.kind == TokenKind::kCharLiteral) ++char_literals;
  }
  EXPECT_EQ(numbers, 1);
  // The `'` inside the number never opens a character literal; only 'x' does.
  EXPECT_EQ(char_literals, 1);
}

TEST(LexerTest, MultiLineBlockCommentIsBlankedWithLineSync) {
  const std::string content =
      "int before = 0;\n"
      "/* comment mentions rand() and\n"
      "   srand(7) across lines */ int after = 1;\n";
  const LexResult lex = Lex(content);
  EXPECT_FALSE(ScrubbedContains(lex, "rand"));
  ASSERT_EQ(lex.scrubbed.size(), 4u);
  EXPECT_NE(lex.scrubbed[2].find("int after"), std::string::npos);
  // Token line numbers stay 1-based and synchronized with the source.
  for (const Token& token : lex.tokens) {
    if (token.text == "after") {
      EXPECT_EQ(token.line, 3);
    }
  }
}

TEST(LexerTest, SplicedLineCommentSwallowsContinuation) {
  // A `\` at the end of a `//` comment continues the comment onto the next
  // physical line — the legacy scanner would have matched rand() there.
  const std::string content =
      "int x = 0;  // comment continues \\\n"
      "rand(); still comment\n"
      "int y = 1;\n";
  const LexResult lex = Lex(content);
  EXPECT_FALSE(ScrubbedContains(lex, "rand"));
  EXPECT_TRUE(ScrubbedContains(lex, "int y"));
}

TEST(LexerTest, IncludeTargetsQuotedAndAngled) {
  const std::string content =
      "#include \"mac/packet.h\"\n"
      "#include <vector>\n"
      "// #include \"commented/out.h\"\n";
  const LexResult lex = Lex(content);
  ASSERT_EQ(lex.includes.size(), 2u);
  EXPECT_EQ(lex.includes[0].target, "mac/packet.h");
  EXPECT_FALSE(lex.includes[0].angled);
  EXPECT_EQ(lex.includes[0].line, 1);
  EXPECT_EQ(lex.includes[1].target, "vector");
  EXPECT_TRUE(lex.includes[1].angled);
}

TEST(LexerTest, SplicedIncludeDirectiveIsExtracted) {
  const std::string content =
      "#include \\\n"
      "  \"sim/time.h\"\n";
  const LexResult lex = Lex(content);
  ASSERT_EQ(lex.includes.size(), 1u);
  EXPECT_EQ(lex.includes[0].target, "sim/time.h");
}

TEST(LexerTest, StringContentsAreBlankedButTokenized) {
  const std::string content = "Log(\"calling rand() now\"); rand();\n";
  const LexResult lex = Lex(content);
  // The literal text must not leak into the scrubbed view...
  ASSERT_EQ(lex.scrubbed.size(), 2u);  // trailing newline pads one empty line
  EXPECT_EQ(lex.scrubbed[0].find("calling"), std::string::npos);
  // ...but the real call after it is still visible.
  const std::vector<std::string> idents = IdentifierTexts(lex);
  EXPECT_EQ(idents, (std::vector<std::string>{"Log", "rand"}));
}

}  // namespace
}  // namespace crn::analyze
