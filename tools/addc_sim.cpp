// addc_sim — command-line driver for the full simulator.
//
// Runs ADDC and/or the Coolest baseline on an arbitrary configuration and
// prints a result summary (and optionally a per-transmission CSV trace).
//
//   addc_sim --help
//   addc_sim --n=500 --pt=0.2 --reps=3
//   addc_sim --algorithm=both --n=300 --num-pus=60 --area=100
//   addc_sim --algorithm=addc --trace=/tmp/run.csv --seed=7
//   addc_sim --continuous-interval-ms=5000 --snapshots=6
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "core/collection.h"
#include "core/scenario.h"
#include "faults/fault_plan.h"
#include "graph/cds_tree.h"
#include "harness/atomic_file.h"
#include "harness/flags.h"
#include "harness/obs_export.h"
#include "harness/parallel_runner.h"
#include "harness/profiler.h"
#include "harness/svg_export.h"
#include "harness/sweep_journal.h"
#include "harness/table.h"
#include "mac/trace.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace {

using namespace crn;

constexpr const char* kHelp = R"(addc_sim — ADDC / Coolest CRN data-collection simulator

Scenario (defaults: the paper's Fig. 6 configuration scaled by --scale):
  --scale=F               density-preserving scale factor (default 0.25)
  --n=INT                 number of SUs (overrides scale)
  --area=F                area side in meters (overrides scale)
  --num-pus=INT           number of PUs (overrides scale)
  --pt=F                  PU per-slot activity p_t (default 0.3)
  --pu-burst=F            Markov mean burst slots (0 = i.i.d., default 0)
  --alpha=F               path-loss exponent (default 4.0)
  --pu-power=F --su-power=F --pu-radius=F --su-radius=F
  --eta-p-db=F --eta-s-db=F
  --c2=paper|corrected    PCR constant variant (default paper; see DESIGN.md)
  --scheduler=calendar|reference  event-queue backend (default calendar; the
                          reference heap is the determinism A/B check — both
                          produce bit-identical runs, see DESIGN.md §12)
  --fairness=BOOL         Algorithm 1 line-12 wait (default true)
  --seed=INT --reps=INT   reproducibility (defaults 0x5EEDADDC, 1)

Execution:
  --algorithm=addc|coolest|both   (default both)
  --metric=accumulated|highest|mixed   Coolest metric (default accumulated)
  --jobs=INT              run repetitions in parallel (default 1 = serial;
                          0 = hardware concurrency). Output is bit-identical
                          to serial; trace and continuous runs stay serial.
  --grain=INT             repetitions per work-stealing chunk (default 0 =
                          auto, reps / (4 * jobs) floored at 1). Any value
                          produces identical output — grain only trades
                          scheduling overhead against steal balance. Env
                          fallback: CRN_GRAIN.
  --continuous-interval-ms=F      run continuous collection (ADDC only)
  --snapshots=INT                 rounds for continuous mode (default 6)
  --faults=FILE           inject the fault plan in FILE into every ADDC run
                          (crashes + self-healing repair, sensing bursts, PU
                          perturbation — format in DESIGN.md §9). Reproducible
                          from --seed; per-rep fault summaries are printed when
                          faults actually fired. Combine with --audit to
                          re-verify routing acyclicity after every repair.
  --audit                         attach the runtime invariant auditor to every
                                  ADDC run (prints the report; also dual-runs
                                  rep 0 to verify trace-digest determinism);
                                  exits nonzero on any violation
  --trace=FILE                    write per-transmission CSV (single rep, ADDC)
  --trace-out=FILE                write packet-lifecycle spans (rep 0, ADDC) as
                                  Chrome trace-event JSON — load the file in
                                  Perfetto / chrome://tracing; forces serial
  --metrics-out=FILE              write the metrics registry (ADDC runs, merged
                                  over reps in rep order) as JSON
  --flight-recorder-out=FILE      record every scheduler action of rep 0's ADDC
                                  run (arm/reschedule/disarm/fire with causal
                                  parent links) into a binary flight dump —
                                  decode with crn_trace; forces serial
  --flight-recorder-depth=INT     flight-recorder ring capacity in records
                                  (default 65536; older records are overwritten)
  --metrics-stride=INT            slots between series snapshots in the metrics
                                  JSON (default 1024; 0 = final state only)
  --svg=FILE                      render the deployment + CDS tree as SVG
  --csv                           machine-readable result rows

Checkpoint / restore (DESIGN.md §14; single serial ADDC rep only):
  --checkpoint-out=FILE   serialize the full run state to FILE at every
                          checkpoint boundary (atomic write-temp-then-rename,
                          CRNCKPT1 format); requires --algorithm=addc,
                          --reps=1, --jobs=1, and no --trace/--trace-out/
                          --continuous-interval-ms/--svg
  --checkpoint-every-events=INT   events between checkpoints (default 100000)
  --restore=FILE          resume from a checkpoint written by
                          --checkpoint-out. Pass the same scenario flags and
                          attachment set as the checkpointed run — mismatches
                          are rejected with an error. Checkpoint/restore runs
                          print `digest: trace=<hex> metrics=<hex>`; a
                          resumed run's digests are bit-identical to the
                          uninterrupted run's
  --crash-after-events=INT  test hook for the crash-recovery soak: SIGKILL
                          this process at the first checkpoint boundary at or
                          after INT events, *before* that checkpoint is
                          written (the on-disk file stays the previous one)

Sweep journal (crash-safe repetition fan-out):
  --journal=DIR           record one atomic completion record per repetition
                          into DIR (any --jobs value; incompatible with
                          --metrics-out/--trace/--trace-out/
                          --flight-recorder-out/--continuous-interval-ms)
  --resume                with --journal: skip repetitions whose records
                          validate, replaying their stored output instead of
                          re-running them
)";

void PrintResultRow(const core::CollectionResult& r, bool csv,
                    std::ostream& out = std::cout) {
  if (csv) {
    out << r.algorithm << "," << (r.completed ? 1 : 0) << "," << r.delay_ms
        << "," << r.capacity_fraction << "," << r.avg_hops << ","
        << r.jain_delivery_fairness << "," << r.mac.attempts << ","
        << r.mac.su_caused_violations << "\n";
    return;
  }
  out << r.algorithm << ": " << (r.completed ? "completed" : "TIMED OUT")
      << " in " << r.delay_ms << " ms, capacity "
      << harness::FormatDouble(r.capacity_fraction, 4) << "·W, avg hops "
      << harness::FormatDouble(r.avg_hops, 2) << ", Jain "
      << harness::FormatDouble(r.jain_delivery_fairness, 3) << ", "
      << r.mac.attempts << " attempts, " << r.mac.su_caused_violations
      << " PU violations\n";
}

// Atomic artifact write with the CLI's error convention (message + exit 2).
bool WriteArtifactOrComplain(const std::string& path, std::string_view bytes) {
  std::string error;
  if (!crn::harness::WriteFileAtomic(path, bytes, &error)) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout << kHelp;
    // Consume everything so --help never reports unknown flags.
    return 0;
  }

  const double scale = flags.GetDouble("scale", 0.25);
  core::ScenarioConfig config = core::ScenarioConfig::ScaledDefaults(scale);
  config.num_sus = static_cast<std::int32_t>(flags.GetInt("n", config.num_sus));
  config.area_side = flags.GetDouble("area", config.area_side);
  config.num_pus = static_cast<std::int32_t>(flags.GetInt("num-pus", config.num_pus));
  config.pu_activity = flags.GetDouble("pt", config.pu_activity);
  config.alpha = flags.GetDouble("alpha", config.alpha);
  config.pu_power = flags.GetDouble("pu-power", config.pu_power);
  config.su_power = flags.GetDouble("su-power", config.su_power);
  config.pu_radius = flags.GetDouble("pu-radius", config.pu_radius);
  config.su_radius = flags.GetDouble("su-radius", config.su_radius);
  config.eta_p_db = flags.GetDouble("eta-p-db", config.eta_p_db);
  config.eta_s_db = flags.GetDouble("eta-s-db", config.eta_s_db);
  config.fairness_wait = flags.GetBool("fairness", config.fairness_wait);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 0x5EEDADDCLL));
  const double burst = flags.GetDouble("pu-burst", 0.0);
  if (burst > 0.0) {
    config.pu_activity_process = pu::ActivityProcess::kMarkov;
    config.pu_mean_burst_slots = burst;
  }
  const std::string c2 = flags.GetString("c2", "paper");
  config.c2_variant =
      c2 == "corrected" ? core::C2Variant::kCorrected : core::C2Variant::kPaper;
  const std::string scheduler = flags.GetString("scheduler", "calendar");
  if (scheduler != "calendar" && scheduler != "reference") {
    std::cerr << "error: --scheduler must be calendar or reference, got '"
              << scheduler << "'\n";
    return 2;
  }
  config.reference_scheduler = scheduler == "reference";

  const std::string algorithm = flags.GetString("algorithm", "both");
  const std::string metric_name = flags.GetString("metric", "accumulated");
  routing::TemperatureMetric metric = routing::TemperatureMetric::kAccumulated;
  if (metric_name == "highest") metric = routing::TemperatureMetric::kHighest;
  if (metric_name == "mixed") metric = routing::TemperatureMetric::kMixed;

  const auto reps = static_cast<std::int32_t>(flags.GetInt("reps", 1));
  const auto jobs = static_cast<std::int32_t>(flags.GetInt("jobs", 1));
  const std::int64_t grain =
      flags.GetInt("grain", crn::GetEnvInt("CRN_GRAIN", 0));
  const bool csv = flags.GetBool("csv", false);
  const bool audit = flags.GetBool("audit", false);
  const std::string trace_path = flags.GetString("trace", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string flight_out = flags.GetString("flight-recorder-out", "");
  const auto flight_depth = static_cast<std::size_t>(
      flags.GetInt("flight-recorder-depth", 1 << 16));
  const auto metrics_stride =
      static_cast<std::int32_t>(flags.GetInt("metrics-stride", 1024));
  const std::string svg_path = flags.GetString("svg", "");
  const double continuous_ms = flags.GetDouble("continuous-interval-ms", 0.0);
  const auto snapshots = static_cast<std::int32_t>(flags.GetInt("snapshots", 6));
  const std::string faults_path = flags.GetString("faults", "");
  const std::string checkpoint_out = flags.GetString("checkpoint-out", "");
  const std::string restore_path = flags.GetString("restore", "");
  const std::int64_t checkpoint_every =
      flags.GetInt("checkpoint-every-events", 100000);
  const std::int64_t crash_after = flags.GetInt("crash-after-events", 0);
  const std::string journal_dir = flags.GetString("journal", "");
  const bool resume = flags.GetBool("resume", false);

  if (!flags.errors().empty() || !flags.UnconsumedFlags().empty()) {
    for (const std::string& error : flags.errors()) {
      std::cerr << "error: " << error << "\n";
    }
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "error: unknown flag " << unknown << "\n";
    }
    std::cerr << "run with --help for usage\n";
    return 2;
  }

  faults::FaultPlan fault_plan;
  if (!faults_path.empty()) fault_plan = faults::LoadPlanFile(faults_path);

  if (csv) {
    std::cout << "algorithm,completed,delay_ms,capacity_fraction,avg_hops,jain,"
                 "attempts,pu_violations\n";
  }

  bool all_completed = true;
  bool audit_clean = true;

  // --- checkpoint / restore: a dedicated single-rep serial ADDC path ----
  if (!checkpoint_out.empty() || !restore_path.empty()) {
    const bool unsupported =
        algorithm != "addc" || reps != 1 || jobs != 1 || continuous_ms > 0.0 ||
        !trace_path.empty() || !trace_out.empty() || !svg_path.empty() ||
        !journal_dir.empty();
    if (unsupported) {
      std::cerr << "error: --checkpoint-out/--restore support exactly one "
                   "serial ADDC repetition (--algorithm=addc --reps=1 "
                   "--jobs=1) without --trace/--trace-out/--svg/"
                   "--continuous-interval-ms/--journal\n";
      return 2;
    }
    if (!checkpoint_out.empty() && checkpoint_every <= 0) {
      std::cerr << "error: --checkpoint-every-events must be positive\n";
      return 2;
    }

    const core::Scenario scenario(config, 0);
    core::RunOptions options;
    // The digest line below is the machine-checked restore contract, so the
    // auditor (trace digest) and a registry (metrics digest) always attach —
    // both are pure observers and part of the checkpoint's fingerprint.
    core::AuditReport audit_report;
    options.audit_report = &audit_report;
    obs::MetricsRegistry metrics;
    options.metrics = &metrics;
    options.metrics_series_stride = metrics_stride;
    faults::FaultReport fault_report;
    if (!faults_path.empty()) {
      options.faults = &fault_plan;
      options.fault_report = &fault_report;
    }
    sim::FlightRecorder flight_recorder(flight_depth);
    if (!flight_out.empty()) options.flight_recorder = &flight_recorder;

    std::string restore_blob;
    if (!restore_path.empty()) {
      std::ifstream in(restore_path, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read checkpoint " << restore_path << "\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      restore_blob = buffer.str();
      options.restore_blob = &restore_blob;
    }
    if (!checkpoint_out.empty()) {
      options.checkpoint_every_events = checkpoint_every;
      options.checkpoint_sink = [&](const std::string& blob,
                                    std::uint64_t events) {
        if (crash_after > 0 &&
            events >= static_cast<std::uint64_t>(crash_after)) {
          // Crash-soak hook: die *before* persisting, so recovery resumes
          // from the previous on-disk checkpoint — the worst honest crash.
          std::raise(SIGKILL);
        }
        std::string error;
        if (!harness::WriteFileAtomic(checkpoint_out, blob, &error)) {
          std::cerr << "error: " << error << "\n";
          std::exit(2);
        }
        if (!csv) {
          std::cout << "checkpoint: " << checkpoint_out << " at event "
                    << events << " (" << blob.size() << " bytes)\n";
        }
      };
    }

    const core::CollectionResult result = core::RunAddc(scenario, options);
    all_completed = result.completed;
    PrintResultRow(result, csv);
    if (!csv && fault_report.injected_total() > 0) {
      std::cout << "  faults: " << fault_report.Summary() << "; delivery "
                << harness::FormatDouble(result.delivery_ratio, 4) << "\n";
    }
    audit_clean = audit_report.ok();
    if (audit && !csv) {
      std::cout << "  audit: " << audit_report.Summary() << "\n";
      for (const std::string& violation : audit_report.first_violations) {
        std::cout << "    violation: " << violation << "\n";
      }
    }
    // The bit-identity witness: CI diffs this line between an uninterrupted
    // run and a kill+resume chain.
    std::cout << "digest: trace=" << std::hex << audit_report.trace_digest
              << " metrics=" << metrics.Digest() << std::dec << "\n";
    if (!metrics_out.empty() &&
        !harness::WriteMetricsJson(metrics,
                                   sim::FromMilliseconds(result.delay_ms),
                                   metrics_out, std::cout)) {
      return 2;
    }
    if (!flight_out.empty()) {
      std::ostringstream dump;
      flight_recorder.WriteDump(dump);
      if (!WriteArtifactOrComplain(flight_out, dump.str())) return 2;
      std::cout << "flight recorder: " << flight_recorder.size() << " of "
                << flight_recorder.total_recorded()
                << " recorded actions retained -> " << flight_out << "\n";
    }
    if (audit && !audit_clean) {
      std::cerr << "audit: invariant violations detected\n";
      return 1;
    }
    return all_completed ? 0 : 1;
  }

  if (!journal_dir.empty()) {
    if (!metrics_out.empty() || continuous_ms > 0.0 || !trace_path.empty() ||
        !trace_out.empty() || !flight_out.empty()) {
      std::cerr << "error: --journal is incompatible with --metrics-out/"
                   "--trace/--trace-out/--flight-recorder-out/"
                   "--continuous-interval-ms\n";
      return 2;
    }
  } else if (resume) {
    std::cerr << "error: --resume requires --journal\n";
    return 2;
  }

  // Parallel standard path: every repetition is an independent cell (the
  // Scenario is a pure function of (config, rep)), so the cells run on a
  // ParallelRunner and the rows print afterwards in repetition order —
  // bit-identical to the serial loop below. Trace and continuous runs keep
  // the serial path. A --journal run uses this engine at any jobs value so
  // its completion records are per-cell regardless of parallelism.
  if ((jobs != 1 || !journal_dir.empty()) && continuous_ms <= 0.0 &&
      trace_path.empty() && trace_out.empty() && flight_out.empty()) {
    struct RepOutcome {
      double pcr = 0.0;
      bool has_addc = false;
      bool has_coolest = false;
      core::CollectionResult addc;
      core::CollectionResult coolest;
      core::AuditReport audit_report;
      core::DeterminismReport determinism;
      faults::FaultReport fault_report;
      // Per-repetition registry (--metrics-out): merged in rep order after
      // the fan-out, so the merged state is bit-identical to a serial run.
      obs::MetricsRegistry metrics;
    };
    std::vector<RepOutcome> outcomes(static_cast<std::size_t>(reps));
    const harness::ParallelRunner runner(jobs, grain);
    const auto run_rep = [&](std::int64_t rep) {
      RepOutcome& outcome = outcomes[static_cast<std::size_t>(rep)];
      const core::Scenario scenario(config, static_cast<std::uint64_t>(rep));
      outcome.pcr = scenario.pcr();
      if (algorithm == "addc" || algorithm == "both") {
        outcome.has_addc = true;
        core::RunOptions options;
        if (audit) options.audit_report = &outcome.audit_report;
        if (!faults_path.empty()) {
          options.faults = &fault_plan;
          options.fault_report = &outcome.fault_report;
        }
        if (!metrics_out.empty()) {
          options.metrics = &outcome.metrics;
          // Counters/histograms fold across every rep, but the time series
          // is one run's timeline: only rep 0 records points, so the merged
          // document's series stays monotone in sim-time.
          options.metrics_series_stride = rep == 0 ? metrics_stride : 0;
        }
        outcome.addc = core::RunAddc(scenario, options);
        if (audit && rep == 0) {
          // The dual run must not fold a second copy of rep 0 into the
          // registry, so the determinism check runs without sinks.
          core::RunOptions recheck = options;
          recheck.metrics = nullptr;
          recheck.spans = nullptr;
          outcome.determinism = core::CheckAddcDeterminism(scenario, recheck);
        }
      }
      if (algorithm == "coolest" || algorithm == "both") {
        outcome.has_coolest = true;
        outcome.coolest = core::RunCoolest(scenario, metric);
      }
    };

    // One repetition's output block plus the bits that feed the exit code.
    // The same renderer serves direct printing and the journal payload, so
    // a replayed repetition prints byte-identically to a fresh one.
    struct RepBlock {
      std::string text;
      bool completed = true;
      bool audit_ok = true;
    };
    const auto render_block = [&](std::int32_t rep) {
      const RepOutcome& outcome = outcomes[static_cast<std::size_t>(rep)];
      RepBlock block;
      std::ostringstream out;
      if (!csv) {
        out << "== rep " << rep << " (n=" << config.num_sus
            << ", N=" << config.num_pus << ", p_t=" << config.pu_activity
            << ", PCR=" << harness::FormatDouble(outcome.pcr, 2) << " m) ==\n";
      }
      if (outcome.has_addc) {
        block.completed &= outcome.addc.completed;
        PrintResultRow(outcome.addc, csv, out);
        // Plans whose compiled timeline is empty leave stdout untouched —
        // part of the empty-plan byte-identity contract.
        if (!csv && outcome.fault_report.injected_total() > 0) {
          out << "  faults: " << outcome.fault_report.Summary()
              << "; delivery "
              << harness::FormatDouble(outcome.addc.delivery_ratio, 4) << "\n";
        }
        if (audit) {
          block.audit_ok &= outcome.audit_report.ok();
          if (!csv) {
            out << "  audit: " << outcome.audit_report.Summary() << "\n";
            for (const std::string& violation :
                 outcome.audit_report.first_violations) {
              out << "    violation: " << violation << "\n";
            }
          }
          if (rep == 0) {
            block.audit_ok &= outcome.determinism.identical;
            if (!csv) {
              out << "  determinism: dual-run digests "
                  << (outcome.determinism.identical ? "identical" : "DIVERGED")
                  << " (" << std::hex << outcome.determinism.first_digest
                  << " vs " << outcome.determinism.second_digest << std::dec
                  << ")\n";
            }
          }
        }
      }
      if (outcome.has_coolest) {
        block.completed &= outcome.coolest.completed;
        PrintResultRow(outcome.coolest, csv, out);
      }
      block.text = out.str();
      return block;
    };

    std::vector<RepBlock> blocks(static_cast<std::size_t>(reps));
    if (journal_dir.empty()) {
      runner.ForEachIndex(reps, run_rep);
      for (std::int32_t rep = 0; rep < reps; ++rep) {
        blocks[static_cast<std::size_t>(rep)] = render_block(rep);
      }
    } else {
      // The fingerprint pins every knob that shapes a cell's output: a
      // journal from a different experiment reads as empty, never as
      // replayable results.
      std::ostringstream fp;
      fp << "addc_sim v1 seed=" << config.seed << " n=" << config.num_sus
         << " N=" << config.num_pus << " area=" << config.area_side
         << " pt=" << config.pu_activity
         << " burst=" << config.pu_mean_burst_slots
         << " alpha=" << config.alpha << " c2=" << c2
         << " scheduler=" << scheduler
         << " fairness=" << config.fairness_wait
         << " algorithm=" << algorithm << " metric=" << metric_name
         << " reps=" << reps << " csv=" << csv << " audit=" << audit
         << " faults=" << faults_path;
      if (!resume) {
        // A fresh (non-resume) journaled run starts from a clean slate so
        // stale completions cannot mask cells that should re-run.
        for (std::int32_t rep = 0; rep < reps; ++rep) {
          std::remove((journal_dir + "/cell_" + std::to_string(rep) + ".rec")
                          .c_str());
        }
      }
      const harness::SweepJournal journal(journal_dir, fp.str());
      const std::int64_t replayed = harness::RunJournaled(
          runner, journal, reps,
          [&](std::int64_t rep) {
            run_rep(rep);
            RepBlock block = render_block(static_cast<std::int32_t>(rep));
            std::string payload =
                std::string(block.completed ? "1" : "0") +
                (block.audit_ok ? "1" : "0") + "\n" + block.text;
            blocks[static_cast<std::size_t>(rep)] = std::move(block);
            return payload;
          },
          [&](std::int64_t rep, const std::string& payload) {
            RepBlock block;
            if (payload.size() >= 3) {
              block.completed = payload[0] == '1';
              block.audit_ok = payload[1] == '1';
              block.text = payload.substr(3);
            }
            blocks[static_cast<std::size_t>(rep)] = std::move(block);
          });
      if (!csv && replayed > 0) {
        std::cout << "journal: replayed " << replayed << " of " << reps
                  << " repetitions from " << journal_dir << "\n";
      }
    }

    if (!svg_path.empty()) {
      const core::Scenario scenario(config, 0);
      const graph::CdsTree& tree = scenario.collection_tree();
      std::ostringstream out;
      harness::SvgOptions svg_options;
      svg_options.pcr_m = scenario.pcr();
      harness::WriteSvg(out, scenario.secondary_graph(), &tree,
                        scenario.pu_positions(), svg_options);
      if (!WriteArtifactOrComplain(svg_path, out.str())) return 2;
      std::cout << "topology rendered to " << svg_path << "\n";
    }
    for (std::int32_t rep = 0; rep < reps; ++rep) {
      const RepBlock& block = blocks[static_cast<std::size_t>(rep)];
      std::cout << block.text;
      all_completed &= block.completed;
      audit_clean &= block.audit_ok;
    }
    if (!metrics_out.empty()) {
      obs::MetricsRegistry merged;
      double final_ms = 0.0;
      for (const RepOutcome& outcome : outcomes) {
        merged.Merge(outcome.metrics);
        if (outcome.has_addc) final_ms = std::max(final_ms, outcome.addc.delay_ms);
      }
      if (!harness::WriteMetricsJson(merged, sim::FromMilliseconds(final_ms),
                                     metrics_out, std::cout)) {
        return 2;
      }
    }
    if (audit && !audit_clean) {
      std::cerr << "audit: invariant violations or digest divergence detected\n";
      return 1;
    }
    return all_completed ? 0 : 1;
  }

  // Serial path. Observability sinks accumulate across the rep loop: the
  // span tracer watches rep 0's ADDC run, per-rep registries merge in rep
  // order (identical to the parallel reduction above).
  obs::PacketSpanTracer span_tracer;
  obs::MetricsRegistry merged_metrics;
  double metrics_final_ms = 0.0;
  // Flight recorder watches rep 0's ADDC run; the profiler supplies its
  // wall probe so per-kind fire wall time lands in the dump summary.
  sim::FlightRecorder flight_recorder(flight_depth);
  harness::RunProfiler flight_profiler;
  if (!flight_out.empty()) {
    harness::AttachFlightRecorderProbe(flight_profiler, flight_recorder);
  }

  for (std::int32_t rep = 0; rep < reps; ++rep) {
    const core::Scenario scenario(config, rep);
    if (!svg_path.empty() && rep == 0) {
      const graph::CdsTree& tree = scenario.collection_tree();
      std::ostringstream out;
      harness::SvgOptions svg_options;
      svg_options.pcr_m = scenario.pcr();
      harness::WriteSvg(out, scenario.secondary_graph(), &tree,
                        scenario.pu_positions(), svg_options);
      if (!WriteArtifactOrComplain(svg_path, out.str())) return 2;
      std::cout << "topology rendered to " << svg_path << "\n";
    }
    if (!csv) {
      std::cout << "== rep " << rep << " (n=" << config.num_sus
                << ", N=" << config.num_pus << ", p_t=" << config.pu_activity
                << ", PCR=" << harness::FormatDouble(scenario.pcr(), 2) << " m) ==\n";
    }
    if (continuous_ms > 0.0) {
      const core::ContinuousResult result = core::RunAddcContinuous(
          scenario, sim::FromMilliseconds(continuous_ms), snapshots);
      all_completed &= result.aggregate.completed;
      PrintResultRow(result.aggregate, csv);
      if (!csv) {
        std::cout << "  snapshot delays (ms):";
        for (double d : result.snapshot_delay_ms) {
          std::cout << " " << harness::FormatDouble(d, 0);
        }
        std::cout << "\n  drift " << harness::FormatDouble(result.delay_drift_ms_per_round, 1)
                  << " ms/round — " << (result.sustainable ? "sustainable" : "NOT sustainable")
                  << "\n";
      }
      continue;
    }
    if (algorithm == "addc" || algorithm == "both") {
      if (!trace_path.empty()) {
        // Trace requested: re-run through the lower-level API with a
        // recorder attached (first repetition only).
        const graph::CdsTree& tree = scenario.collection_tree();
        std::vector<graph::NodeId> next_hop(tree.node_count(), scenario.sink());
        for (graph::NodeId v = 0; v < tree.node_count(); ++v) {
          next_hop[v] = v == scenario.sink() ? scenario.sink() : tree.parent(v);
        }
        sim::Simulator simulator(config.reference_scheduler
                                     ? sim::SchedulerKind::kReference
                                     : sim::SchedulerKind::kCalendar);
        pu::PrimaryNetwork primary = scenario.MakePrimaryNetwork();
        mac::MacConfig mac_config;
        mac_config.pcr = scenario.pcr();
        mac_config.su_power = config.su_power;
        mac_config.eta_s = SirThreshold::FromDb(config.eta_s_db);
        mac_config.eta_p = SirThreshold::FromDb(config.eta_p_db);
        mac_config.alpha = config.alpha;
        mac_config.slot = config.slot;
        mac_config.contention_window = config.contention_window;
        mac_config.tx_duration = config.slot - config.contention_window;
        mac::CollectionMac mac(simulator, primary, scenario.su_positions(),
                               scenario.area(), scenario.sink(), next_hop,
                               mac_config, scenario.MakeRunRng().Stream("mac"));
        mac::TraceRecorder recorder;
        recorder.Attach(mac);
        if (!trace_out.empty() && rep == 0) span_tracer.Attach(mac);
        if (!flight_out.empty() && rep == 0) {
          simulator.AttachFlightRecorder(&flight_recorder);
        }
        mac.StartSnapshotCollection();
        simulator.Run();
        std::ostringstream out;
        recorder.WriteCsv(out);
        if (!WriteArtifactOrComplain(trace_path, out.str())) return 2;
        const auto summary = recorder.Summarize();
        std::cout << "ADDC trace: " << summary.attempts << " attempts, useful airtime "
                  << harness::FormatDouble(summary.useful_airtime_fraction, 3)
                  << ", written to " << trace_path << "\n";
        all_completed &= mac.finished();
        continue;
      }
      core::RunOptions options;
      core::AuditReport audit_report;
      faults::FaultReport fault_report;
      if (audit) options.audit_report = &audit_report;
      if (!faults_path.empty()) {
        options.faults = &fault_plan;
        options.fault_report = &fault_report;
      }
      obs::MetricsRegistry rep_metrics;
      if (!metrics_out.empty()) {
        options.metrics = &rep_metrics;
        // Series points come from rep 0 only — merged counters span all
        // reps, but a merged series would interleave rep-local timelines.
        options.metrics_series_stride = rep == 0 ? metrics_stride : 0;
      }
      if (!trace_out.empty() && rep == 0) options.spans = &span_tracer;
      if (!flight_out.empty() && rep == 0) {
        options.flight_recorder = &flight_recorder;
      }
      const core::CollectionResult result = core::RunAddc(scenario, options);
      if (!metrics_out.empty()) {
        merged_metrics.Merge(rep_metrics);
        metrics_final_ms = std::max(metrics_final_ms, result.delay_ms);
      }
      all_completed &= result.completed;
      PrintResultRow(result, csv);
      if (!csv && fault_report.injected_total() > 0) {
        std::cout << "  faults: " << fault_report.Summary() << "; delivery "
                  << harness::FormatDouble(result.delivery_ratio, 4) << "\n";
      }
      if (audit) {
        audit_clean &= audit_report.ok();
        if (!csv) {
          std::cout << "  audit: " << audit_report.Summary() << "\n";
          for (const std::string& violation : audit_report.first_violations) {
            std::cout << "    violation: " << violation << "\n";
          }
          // Violation forensics: the causal event history leading into the
          // first violation, captured from the flight recorder.
          if (!audit_report.flight_trail.empty()) {
            std::cout << "  " << audit_report.flight_trail;
          }
        }
        if (rep == 0) {
          // Sinkless dual run: re-attaching the tracer, registry, or flight
          // recorder would double-count rep 0 (the check itself is
          // observation-free).
          core::RunOptions recheck = options;
          recheck.metrics = nullptr;
          recheck.spans = nullptr;
          recheck.flight_recorder = nullptr;
          const core::DeterminismReport determinism =
              core::CheckAddcDeterminism(scenario, recheck);
          audit_clean &= determinism.identical;
          if (!csv) {
            std::cout << "  determinism: dual-run digests "
                      << (determinism.identical ? "identical" : "DIVERGED") << " ("
                      << std::hex << determinism.first_digest << " vs "
                      << determinism.second_digest << std::dec << ")\n";
          }
        }
      }
    }
    if (algorithm == "coolest" || algorithm == "both") {
      const core::CollectionResult result = core::RunCoolest(scenario, metric);
      all_completed &= result.completed;
      PrintResultRow(result, csv);
    }
  }
  if (!trace_out.empty()) {
    std::ostringstream out;
    span_tracer.WriteChromeTrace(out);
    if (!WriteArtifactOrComplain(trace_out, out.str())) return 2;
    std::cout << "lifecycle trace: " << trace_out << " ("
              << span_tracer.packets().size() << " packets, "
              << span_tracer.attempts().size() << " attempts)\n";
  }
  if (!metrics_out.empty() &&
      !harness::WriteMetricsJson(merged_metrics,
                                 sim::FromMilliseconds(metrics_final_ms),
                                 metrics_out, std::cout)) {
    return 2;
  }
  if (!flight_out.empty()) {
    harness::FoldFlightRecorderIntoProfiler(flight_recorder, flight_profiler);
    std::ostringstream out;
    flight_recorder.WriteDump(out);
    if (!WriteArtifactOrComplain(flight_out, out.str())) return 2;
    std::cout << "flight recorder: " << flight_recorder.size() << " of "
              << flight_recorder.total_recorded()
              << " recorded actions retained -> " << flight_out << "\n";
    const std::vector<std::string>& kind_names = flight_recorder.kind_names();
    const std::vector<sim::KindCounters>& counters = flight_recorder.counters();
    for (std::size_t k = 0; k < counters.size(); ++k) {
      if (counters[k].fires == 0) continue;
      std::cout << "  " << kind_names[k] << ": " << counters[k].fires
                << " fires, "
                << harness::FormatDouble(
                       flight_recorder.fire_wall_seconds(
                           static_cast<std::uint16_t>(k)) * 1e3, 3)
                << " ms wall\n";
    }
  }
  if (audit && !audit_clean) {
    std::cerr << "audit: invariant violations or digest divergence detected\n";
    return 1;
  }
  return all_completed ? 0 : 1;
}
