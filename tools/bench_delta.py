#!/usr/bin/env python3
"""CI perf-smoke comparator for BENCH_sim_throughput.json artifacts.

Compares a freshly produced bench JSON against the committed baseline
(bench/baselines/BENCH_sim_throughput.json) on the *deterministic* work
counters, not on wall time: the perf.* counters are exact functions of
(scenario, seed), so any increase is a real algorithmic regression — there
is no machine noise to absorb, and the default tolerance is therefore zero.
Wall-clock deltas are printed for the log; they gate only when the caller
opts in with --max-wall-ratio, and then with a deliberately generous bound
sized for shared-runner noise, not for micro-regressions.

Checks, without any third-party dependency:
  * envelope comparability — both files are schema v2, same bench name,
    and identical scale block (num_sus/num_pus/area_side/pu_activity/
    repetitions/seed). Counter comparison across different instances is
    meaningless, so a mismatch is exit 2 (incomparable), not a failure.
  * budget (--budget KEY, repeatable) — for every sweep title present in
    both files, current metrics[KEY] must not exceed
    baseline * (1 + --tolerance). Default budget: the cached engine's
    geometry-term count, the quantity DESIGN.md §10 pins. Keys spelled
    "pool.<field>" resolve from the sweep's scheduling-diagnostics section
    (tasks/chunks/steals/workers) instead of the metrics registry — steals
    are scheduling-dependent, so they budget (upper-bound) rather than pin.
  * exact (--exact KEY, repeatable) — like --budget but strict equality:
    the key must match the baseline bit for bit on every shared title.
    This is the gate for deterministic cache accounting (prefab.hits/
    misses/bytes): any drift means the keying rule or the fold changed.
  * --verify-digests — every sweep whose title starts with "engine
    verification" or "scheduler verification" must carry the same
    addc_trace_digest on all its points (the cached-vs-direct and
    calendar-vs-reference bit-identity contracts, re-checked from the
    artifact).
  * --min-term-ratio R — at the largest n among "... (cached)"/"... (direct)"
    timing-sweep pairs, direct/cached perf.sir_terms_evaluated must be >= R.
  * --max-wall-ratio R — for every sweep title present in both files,
    current wall_seconds / baseline wall_seconds must be <= R. This is the
    only wall-clock gate; it exists to catch order-of-magnitude blowups
    (e.g. an accidentally quadratic scheduler) that the deterministic
    counters cannot see.

Exit 0 when all checks pass, 1 on any regression/violation, 2 on unusable
or incomparable inputs.
"""
from __future__ import annotations

import argparse
import json
import re
import sys

DEFAULT_BUDGET = ["perf.sir_terms_evaluated{engine=cached}"]
SCALE_KEYS = ("num_sus", "num_pus", "area_side", "pu_activity",
              "repetitions", "seed")


def fail_usage(message: str) -> None:
    print(f"bench_delta: {message}", file=sys.stderr)
    raise SystemExit(2)


def require(mapping, key, path: str):
    """mapping[key], but a schema mismatch names the offending key path
    (e.g. "sweeps[3].title") instead of surfacing as a bare KeyError."""
    if not isinstance(mapping, dict):
        fail_usage(f"{path}: expected an object, got "
                   f"{type(mapping).__name__}")
    if key not in mapping:
        fail_usage(f"{path}.{key}: required key missing")
    return mapping[key]


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail_usage(f"{path}: {error}")
    if document.get("schema_version") != 2:
        fail_usage(f"{path}: schema_version must be 2, got "
                   f"{document.get('schema_version')!r}")
    sweeps = require(document, "sweeps", path)
    if not isinstance(sweeps, list):
        fail_usage(f"{path}.sweeps: expected an array, got "
                   f"{type(sweeps).__name__}")
    for index, sweep in enumerate(sweeps):
        sweep_path = f"{path}.sweeps[{index}]"
        title = require(sweep, "title", sweep_path)
        if not isinstance(title, str):
            fail_usage(f"{sweep_path}.title: expected a string, got "
                       f"{type(title).__name__}")
        metrics = sweep.get("metrics", {})
        if not isinstance(metrics, dict):
            fail_usage(f"{sweep_path}.metrics: expected an object, got "
                       f"{type(metrics).__name__}")
    return document


def check_comparable(baseline: dict, current: dict) -> None:
    if baseline.get("bench") != current.get("bench"):
        fail_usage(f"bench name mismatch: {baseline.get('bench')!r} vs "
                   f"{current.get('bench')!r}")
    for key in SCALE_KEYS:
        b = baseline.get("scale", {}).get(key)
        c = current.get("scale", {}).get(key)
        if b != c:
            fail_usage(f"scale.{key} differs ({b!r} vs {c!r}); counters are "
                       "only comparable on the identical pinned instance")


def sweeps_by_title(document: dict) -> dict[str, dict]:
    return {sweep.get("title", ""): sweep for sweep in document["sweeps"]}


def report_profile(baseline: dict, current: dict) -> None:
    """Informational harness-profiler comparison. The `profile` section is
    optional (the bench may run with profiling disabled), so absence on
    either side skips the report — it must never fail the gate."""
    base_profile = baseline.get("profile")
    profile = current.get("profile")
    if not isinstance(base_profile, dict) or not isinstance(profile, dict):
        print("bench_delta: profile section absent — skipping "
              "(optional, informational only)")
        return
    base_phases = {phase.get("phase", ""): phase
                   for phase in base_profile.get("phases", [])
                   if isinstance(phase, dict)}
    for phase in profile.get("phases", []):
        if not isinstance(phase, dict):
            continue
        name = phase.get("phase", "")
        base = base_phases.get(name)
        if base is None or not base.get("total_s") or not phase.get("total_s"):
            continue
        ratio = phase["total_s"] / base["total_s"]
        print(f"bench_delta: profile phase '{name}': {phase['total_s']:.3f}s "
              f"vs baseline {base['total_s']:.3f}s "
              f"({ratio:.2f}x, informational)")


def metric_value(sweep: dict, key: str):
    """Resolves a comparison key in one sweep section. "pool.<field>" keys
    read the scheduling-diagnostics section WriteBenchJson emits next to
    "metrics"; everything else reads the merged metrics registry."""
    if key.startswith("pool."):
        pool = sweep.get("pool", {})
        return pool.get(key[len("pool."):]) if isinstance(pool, dict) else None
    return sweep.get("metrics", {}).get(key)


def check_budget(baseline: dict, current: dict, keys: list[str],
                 tolerance: float) -> list[str]:
    problems: list[str] = []
    base_sweeps = sweeps_by_title(baseline)
    compared = 0
    for title, sweep in sweeps_by_title(current).items():
        base = base_sweeps.get(title)
        if base is None:
            continue
        for key in keys:
            base_value = metric_value(base, key)
            if base_value is None:
                continue
            allowed = base_value * (1.0 + tolerance)
            value = metric_value(sweep, key)
            if value is None:
                problems.append(f"{title}: {key} missing from current run "
                                f"(baseline {base_value})")
                continue
            compared += 1
            verdict = "OK" if value <= allowed else "REGRESSION"
            print(f"bench_delta: {title}: {key} {value} vs baseline "
                  f"{base_value} (budget {allowed:.0f}) {verdict}")
            if value > allowed:
                problems.append(f"{title}: {key} {value} exceeds budget "
                                f"{allowed:.0f}")
        if base.get("wall_seconds") and sweep.get("wall_seconds"):
            ratio = sweep["wall_seconds"] / base["wall_seconds"]
            print(f"bench_delta: {title}: wall {sweep['wall_seconds']:.3f}s "
                  f"vs baseline {base['wall_seconds']:.3f}s "
                  f"({ratio:.2f}x, informational)")
    if compared == 0:
        problems.append("no budget counter was compared — title or key "
                        "drift between baseline and current")
    return problems


def check_exact(baseline: dict, current: dict, keys: list[str]) -> list[str]:
    """Deterministic keys (prefab.* cache accounting): strict equality on
    every title the baseline carries the key for. A missing title or key on
    the current side is itself a failure — the counters are supposed to be
    exact functions of the pinned instance, so silence means the fold or
    the bench shape changed."""
    problems: list[str] = []
    current_sweeps = sweeps_by_title(current)
    compared = 0
    for title, base in sweeps_by_title(baseline).items():
        for key in keys:
            base_value = metric_value(base, key)
            if base_value is None:
                continue
            sweep = current_sweeps.get(title)
            value = metric_value(sweep, key) if sweep is not None else None
            if value is None:
                problems.append(f"{title}: {key} missing from current run "
                                f"(baseline {base_value})")
                continue
            compared += 1
            verdict = "OK" if value == base_value else "MISMATCH"
            print(f"bench_delta: {title}: {key} {value} vs baseline "
                  f"{base_value} (exact) {verdict}")
            if value != base_value:
                problems.append(f"{title}: {key} {value} != baseline "
                                f"{base_value} (exact match required)")
    if compared == 0:
        problems.append("--exact: no exact counter was compared — title or "
                        "key drift between baseline and current")
    return problems


VERIFICATION_TITLE_PREFIXES = ("engine verification", "scheduler verification")


def check_digests(current: dict) -> list[str]:
    problems: list[str] = []
    checked = 0
    for sweep in current["sweeps"]:
        title = sweep.get("title", "")
        if not title.startswith(VERIFICATION_TITLE_PREFIXES):
            continue
        digests = [point.get("addc_trace_digest")
                   for point in sweep.get("points", [])]
        checked += 1
        if len(digests) < 2 or None in digests:
            problems.append(f"{title}: verification points missing "
                            "addc_trace_digest")
        elif len(set(digests)) != 1:
            problems.append(f"{title}: verification digests differ: "
                            f"{digests}")
        else:
            print(f"bench_delta: {title}: {len(digests)} "
                  f"digests identical ({digests[0]})")
    if checked == 0:
        problems.append("--verify-digests: no verification sweep "
                        f"(titles {VERIFICATION_TITLE_PREFIXES}) in "
                        "current run")
    return problems


def check_wall_ratio(baseline: dict, current: dict,
                     maximum: float) -> list[str]:
    """Wall-clock blowup gate. Unlike the counters, wall time is noisy, so
    the caller picks a generous `maximum` (CI uses 3x): the gate is meant to
    catch complexity-class regressions, not jitter. Sweeps present on only
    one side are skipped — new rungs have no baseline to regress against."""
    problems: list[str] = []
    base_sweeps = sweeps_by_title(baseline)
    compared = 0
    for title, sweep in sweeps_by_title(current).items():
        base = base_sweeps.get(title)
        if base is None:
            continue
        base_wall = base.get("wall_seconds")
        wall = sweep.get("wall_seconds")
        if not base_wall or not wall:
            continue
        compared += 1
        ratio = wall / base_wall
        if ratio > maximum:
            problems.append(f"{title}: wall {wall:.3f}s is {ratio:.2f}x "
                            f"baseline {base_wall:.3f}s (limit "
                            f"{maximum:g}x)")
    print(f"bench_delta: wall ratio <= {maximum:g}x checked on {compared} "
          f"shared sweep(s): {'FAIL' if problems else 'OK'}")
    if compared == 0:
        problems.append("--max-wall-ratio: no sweep shared a title between "
                        "baseline and current")
    return problems


def check_term_ratio(current: dict, minimum: float) -> list[str]:
    # Pair "<prefix> (cached)" with "<prefix> (direct)" and test the pair
    # with the largest n in its title (the ISSUE's headline scenario).
    sweeps = sweeps_by_title(current)
    best_n, best_pair = -1, None
    for title, sweep in sweeps.items():
        if not title.endswith(" (cached)"):
            continue
        partner = sweeps.get(title[:-len(" (cached)")] + " (direct)")
        if partner is None:
            continue
        match = re.search(r"n=(\d+)", title)
        n = int(match.group(1)) if match else 0
        if n > best_n:
            best_n, best_pair = n, (title, sweep, partner)
    if best_pair is None:
        return ["--min-term-ratio: no (cached)/(direct) timing-sweep pair "
                "in current run"]
    title, cached, direct = best_pair
    cached_terms = cached.get("metrics", {}).get(
        "perf.sir_terms_evaluated{engine=cached}")
    direct_terms = direct.get("metrics", {}).get(
        "perf.sir_terms_evaluated{engine=direct}")
    if not cached_terms or not direct_terms:
        return [f"{title}: perf.sir_terms_evaluated missing from metrics"]
    ratio = direct_terms / cached_terms
    print(f"bench_delta: {title}: direct/cached SIR terms "
          f"{direct_terms}/{cached_terms} = {ratio:.2f}x "
          f"(required >= {minimum:g}x)")
    if ratio < minimum:
        return [f"{title}: term ratio {ratio:.2f}x below required "
                f"{minimum:g}x"]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--budget", action="append", default=[],
                        help="counter key that must not exceed the baseline "
                             f"(repeatable; default {DEFAULT_BUDGET[0]})")
    parser.add_argument("--exact", action="append", default=[],
                        help="counter key that must equal the baseline "
                             "exactly on every shared title (repeatable; "
                             "e.g. prefab.hits)")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="fractional budget slack (default 0: the "
                             "counters are deterministic)")
    parser.add_argument("--verify-digests", action="store_true")
    parser.add_argument("--min-term-ratio", type=float, default=0.0)
    parser.add_argument("--max-wall-ratio", type=float, default=0.0,
                        help="gate: current/baseline wall_seconds per shared "
                             "sweep title must not exceed this (0 = wall "
                             "stays informational)")
    arguments = parser.parse_args()

    baseline = load(arguments.baseline)
    current = load(arguments.current)
    check_comparable(baseline, current)
    report_profile(baseline, current)

    problems = check_budget(baseline, current,
                            arguments.budget or DEFAULT_BUDGET,
                            arguments.tolerance)
    if arguments.exact:
        problems += check_exact(baseline, current, arguments.exact)
    if arguments.verify_digests:
        problems += check_digests(current)
    if arguments.min_term_ratio > 0.0:
        problems += check_term_ratio(current, arguments.min_term_ratio)
    if arguments.max_wall_ratio > 0.0:
        problems += check_wall_ratio(baseline, current,
                                     arguments.max_wall_ratio)

    for problem in problems:
        print(f"bench_delta: FAIL {problem}", file=sys.stderr)
    print(f"bench_delta: {'FAIL' if problems else 'OK'} "
          f"({len(problems)} problem(s))")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
