#include "crn_analyze/analysis.h"

#include <cctype>
#include <sstream>
#include <utility>

namespace crn::analyze {

SourceFile MakeSourceFile(std::string logical_path, const std::string& content) {
  SourceFile file;
  file.logical_path = std::move(logical_path);
  std::istringstream stream(content);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw_lines.push_back(line);
  }
  file.lex = Lex(content);
  // Lex() always materializes at least one (possibly empty) line; keep the
  // two views the same length so rules can index either by line - 1.
  while (file.lex.scrubbed.size() < file.raw_lines.size()) {
    file.lex.scrubbed.emplace_back();
  }
  while (file.raw_lines.size() < file.lex.scrubbed.size()) {
    file.raw_lines.emplace_back();
  }
  return file;
}

std::string NormalizeForFingerprint(const std::string& text) {
  std::string normalized;
  normalized.reserve(text.size());
  bool pending_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !normalized.empty();
      continue;
    }
    if (pending_space) {
      normalized.push_back(' ');
      pending_space = false;
    }
    normalized.push_back(c);
  }
  return normalized;
}

}  // namespace crn::analyze
