// Core vocabulary types shared by every crn_analyze pass.
//
// crn_analyze promotes the original line-regex checker (tools/crn_lint.cc,
// kept as a fallback) into a small multi-pass framework: a real tokenizer
// feeds per-file rules, and whole-tree passes (include-graph layering,
// determinism taint, concurrency discipline) see across file boundaries.
// Every pass reports through the same Finding type so baselining, SARIF
// export, and the self-test treat all rules uniformly.
#ifndef CRN_ANALYZE_ANALYSIS_H_
#define CRN_ANALYZE_ANALYSIS_H_

#include <string>
#include <vector>

#include "crn_analyze/lexer.h"

namespace crn::analyze {

struct Finding {
  std::string path;  // logical (repo-relative) path
  int line = 0;
  std::string rule;
  std::string message;
  // Stable identity for baseline matching: independent of line numbers so
  // unrelated edits above a baselined finding do not invalidate the entry.
  // Line findings use the whitespace-normalized scrubbed line; include-graph
  // findings use "include=<target>" / "cycle=<a -> b -> ...>".
  std::string fingerprint;
  bool suppressed_by_baseline = false;
};

// One analyzed file: raw text for suppression markers, scrubbed text and
// tokens for rule matching, include directives for the graph pass.
struct SourceFile {
  std::string logical_path;
  std::vector<std::string> raw_lines;
  LexResult lex;
};

SourceFile MakeSourceFile(std::string logical_path, const std::string& content);

// Collapses interior whitespace runs and trims — the canonical form used by
// Finding::fingerprint and baseline entries.
std::string NormalizeForFingerprint(const std::string& text);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_ANALYSIS_H_
