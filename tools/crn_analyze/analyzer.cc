#include "crn_analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "crn_analyze/baseline.h"
#include "crn_analyze/include_graph.h"
#include "crn_analyze/passes.h"
#include "crn_analyze/rules.h"
#include "crn_analyze/sarif.h"

namespace crn::analyze {

namespace {

namespace fs = std::filesystem;

std::string ReadFileContent(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Minimal compile_commands.json reader: extracts every "file" value. The
// file is machine-generated JSON, so a targeted string scan (with escape
// handling) is sufficient — no JSON library in the toolchain.
std::vector<std::string> ParseCompileCommandsFiles(const std::string& content) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = content.find(key, pos)) != std::string::npos) {
    std::size_t i = pos + key.size();
    while (i < content.size() &&
           (content[i] == ' ' || content[i] == ':' || content[i] == '\t')) {
      ++i;
    }
    if (i < content.size() && content[i] == '"') {
      ++i;
      std::string value;
      while (i < content.size() && content[i] != '"') {
        if (content[i] == '\\' && i + 1 < content.size()) {
          value.push_back(content[i + 1]);
          i += 2;
        } else {
          value.push_back(content[i]);
          ++i;
        }
      }
      files.push_back(value);
    }
    pos += key.size();
  }
  return files;
}

// The scan set: src/tests/bench sources, either from a directory walk or —
// compile-commands-aware mode — the TUs the build actually compiles plus
// every header under the scanned roots (headers never appear as TUs).
std::vector<fs::path> CollectFiles(const fs::path& root,
                                   const std::string& compile_commands_path,
                                   std::vector<std::string>& errors) {
  std::set<fs::path> files;
  const std::vector<const char*> tops = {"src", "tests", "bench"};
  auto under_scanned_top = [&](const fs::path& path) {
    const std::string relative = fs::relative(path, root).generic_string();
    for (const char* top : tops) {
      if (relative.rfind(std::string(top) + "/", 0) == 0) return true;
    }
    return false;
  };
  if (!compile_commands_path.empty()) {
    const fs::path cc_path(compile_commands_path);
    if (!fs::exists(cc_path)) {
      errors.push_back(compile_commands_path + ": no such file");
      return {};
    }
    for (const std::string& file :
         ParseCompileCommandsFiles(ReadFileContent(cc_path))) {
      fs::path path(file);
      if (path.is_relative()) path = cc_path.parent_path() / path;
      std::error_code ec;
      path = fs::weakly_canonical(path, ec);
      if (!ec && fs::exists(path) && HasSourceExtension(path) &&
          under_scanned_top(path)) {
        files.insert(path);
      }
    }
  }
  for (const char* top : tops) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      errors.push_back("missing directory " + dir.string());
      return {};
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !HasSourceExtension(entry.path())) {
        continue;
      }
      // In compile-commands mode only headers ride along from the walk.
      if (!compile_commands_path.empty() &&
          entry.path().extension() != ".h") {
        continue;
      }
      files.insert(entry.path());
    }
  }
  return {files.begin(), files.end()};
}

std::vector<Finding> RunAllFilePasses(const SourceFile& file) {
  std::vector<Finding> findings = RunFileRules(file);
  for (Finding& finding : RunDeterminismTaintPass(file)) {
    findings.push_back(std::move(finding));
  }
  for (Finding& finding : RunConcurrencyDisciplinePass(file)) {
    findings.push_back(std::move(finding));
  }
  return findings;
}

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule, a.fingerprint) <
                     std::tie(b.path, b.line, b.rule, b.fingerprint);
            });
}

std::string FixtureLogicalPath(const std::string& file_name) {
  std::string logical = file_name;
  std::size_t pos = 0;
  while ((pos = logical.find("__", pos)) != std::string::npos) {
    logical.replace(pos, 2, "/");
  }
  return logical;
}

}  // namespace

AnalyzeResult AnalyzeTree(const std::string& root,
                          const AnalyzeOptions& options) {
  AnalyzeResult result;
  const fs::path root_path(root);
  const std::vector<fs::path> paths =
      CollectFiles(root_path, options.compile_commands_path, result.errors);
  if (!result.errors.empty()) return result;

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    files.push_back(MakeSourceFile(fs::relative(path, root_path).generic_string(),
                                   ReadFileContent(path)));
  }
  result.files_scanned = static_cast<int>(files.size());

  for (const SourceFile& file : files) {
    for (Finding& finding : RunAllFilePasses(file)) {
      result.findings.push_back(std::move(finding));
    }
  }
  for (Finding& finding : RunIncludeGraphPass(files)) {
    result.findings.push_back(std::move(finding));
  }
  SortFindings(result.findings);

  if (!options.baseline_path.empty()) {
    Baseline baseline = LoadBaseline(options.baseline_path);
    if (!baseline.errors.empty()) {
      result.errors = baseline.errors;
      return result;
    }
    for (std::string& warning : ApplyBaseline(baseline, result.findings)) {
      result.warnings.push_back(std::move(warning));
    }
  }

  if (!options.sarif_out_path.empty()) {
    std::ofstream sarif(options.sarif_out_path);
    if (!sarif) {
      result.errors.push_back(options.sarif_out_path +
                              ": cannot write SARIF output");
      return result;
    }
    WriteSarif(sarif, result.findings);
  }
  return result;
}

int RunSelfTest(const std::string& root) {
  const fs::path root_path(root);
  // The migrated rules share the legacy checker's fixtures — one source of
  // truth for both binaries; the new passes have their own fixture set.
  const fs::path legacy_fixtures = root_path / "tools" / "lint_fixtures";
  const fs::path analyze_fixtures =
      root_path / "tools" / "crn_analyze" / "fixtures";

  // fixture file name → rule expected to fire ("" = must stay clean).
  const std::map<std::string, std::string> expected_legacy = {
      {"src__common__bad_rng.cc", "banned-rng"},
      {"src__sim__bad_clock.cc", "wall-clock"},
      {"src__sim__bad_throw.cc", "throw-in-callback"},
      {"src__spectrum__bad_db.cc", "raw-db-conversion"},
      {"src__mac__bad_iteration.cc", "unordered-iteration"},
      {"src__mac__bad_hot_math.cc", "hot-path-math"},
      {"src__core__bad_float.cc", "float-in-physics"},
      {"src__harness__bad_shared_rng.cc", "shared-mutable-rng"},
      {"src__geom__bad_guard.h", "header-guard"},
      {"src__mac__bad_io.cc", "library-io"},
      {"src__core__clean_fixture.cc", ""},
      {"src__core__clean_rawstring.cc", ""},
  };
  const std::map<std::string, std::string> expected_analyze = {
      {"src__core__bad_ptr_key.cc", "determinism-taint"},
      {"src__core__bad_ptr_sort.cc", "determinism-taint"},
      {"src__sim__bad_time_seed.cc", "determinism-taint"},
      {"src__mac__bad_static_state.cc", "concurrency-discipline"},
      {"src__harness__bad_capture.cc", "concurrency-discipline"},
      {"src__core__bad_suppression.cc", "suppression-justification"},
      {"src__mac__bad_raw_schedule.cc", "raw-schedule-in-mac"},
      {"src__mac__bad_unnamed_timer.cc", "unnamed-timer-kind"},
      {"src__obs__bad_artifact_write.cc", "raw-artifact-write"},
      {"src__harness__bad_parallel_runner_alloc.cc", "hot-path-alloc"},
      {"src__core__clean_tokenizer.cc", ""},
  };

  int failures = 0;
  auto check_fixture = [&](const fs::path& dir, const std::string& file_name,
                           const std::string& rule) {
    const fs::path file = dir / file_name;
    if (!fs::exists(file)) {
      std::cout << "FAIL " << file_name << ": fixture missing\n";
      ++failures;
      return;
    }
    const SourceFile source =
        MakeSourceFile(FixtureLogicalPath(file_name), ReadFileContent(file));
    const std::vector<Finding> findings = RunAllFilePasses(source);
    if (rule.empty()) {
      if (findings.empty()) {
        std::cout << "PASS " << file_name << ": clean\n";
      } else {
        std::cout << "FAIL " << file_name << ": expected no findings, got "
                  << findings.size() << " ([" << findings.front().rule
                  << "] line " << findings.front().line << ")\n";
        ++failures;
      }
      return;
    }
    const bool fired =
        std::any_of(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; });
    if (fired) {
      std::cout << "PASS " << file_name << ": [" << rule << "] fired\n";
    } else {
      std::cout << "FAIL " << file_name << ": [" << rule << "] did not fire\n";
      ++failures;
    }
  };

  for (const auto& [file_name, rule] : expected_legacy) {
    check_fixture(legacy_fixtures, file_name, rule);
  }
  for (const auto& [file_name, rule] : expected_analyze) {
    check_fixture(analyze_fixtures, file_name, rule);
  }

  // Include-graph pass: a deliberately introduced cycle and an upward
  // include, analyzed together as one miniature tree.
  {
    const fs::path graph_dir = analyze_fixtures / "graph";
    std::vector<SourceFile> graph_files;
    if (fs::exists(graph_dir)) {
      std::vector<fs::path> fixture_paths;
      for (const auto& entry : fs::directory_iterator(graph_dir)) {
        if (entry.is_regular_file()) fixture_paths.push_back(entry.path());
      }
      std::sort(fixture_paths.begin(), fixture_paths.end());
      for (const fs::path& path : fixture_paths) {
        graph_files.push_back(
            MakeSourceFile(FixtureLogicalPath(path.filename().string()),
                           ReadFileContent(path)));
      }
    }
    const std::vector<Finding> findings = RunIncludeGraphPass(graph_files);
    for (const char* rule : {"include-cycle", "layering"}) {
      const bool fired =
          std::any_of(findings.begin(), findings.end(),
                      [&](const Finding& f) { return f.rule == rule; });
      if (fired) {
        std::cout << "PASS graph fixtures: [" << rule << "] fired\n";
      } else {
        std::cout << "FAIL graph fixtures: [" << rule << "] did not fire\n";
        ++failures;
      }
    }
  }

  // Baseline policy: an entry without a justification must be rejected.
  {
    const fs::path bad_baseline = analyze_fixtures / "bad_baseline.txt";
    Baseline baseline = LoadBaseline(bad_baseline.string());
    if (!fs::exists(bad_baseline)) {
      std::cout << "FAIL bad_baseline.txt: fixture missing\n";
      ++failures;
    } else if (!baseline.errors.empty()) {
      std::cout << "PASS bad_baseline.txt: unjustified entry rejected\n";
    } else {
      std::cout << "FAIL bad_baseline.txt: unjustified entry accepted\n";
      ++failures;
    }
  }

  const int total = static_cast<int>(expected_legacy.size()) +
                    static_cast<int>(expected_analyze.size()) + 3;
  std::cout << "crn_analyze self-test: " << (total - failures) << "/" << total
            << " checks ok\n";
  return failures;
}

}  // namespace crn::analyze
