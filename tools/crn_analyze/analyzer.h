// Orchestration: file discovery (directory walk or compile_commands.json),
// the pass pipeline, baseline application, and the self-test.
#ifndef CRN_ANALYZE_ANALYZER_H_
#define CRN_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

struct AnalyzeOptions {
  std::string baseline_path;          // empty: no baseline
  std::string sarif_out_path;         // empty: no SARIF artifact
  std::string compile_commands_path;  // empty: walk src/tests/bench
};

struct AnalyzeResult {
  std::vector<Finding> findings;  // new + baseline-suppressed, in path order
  std::vector<std::string> warnings;
  std::vector<std::string> errors;  // unusable inputs (exit 2)
  int files_scanned = 0;
  [[nodiscard]] int new_finding_count() const {
    int count = 0;
    for (const Finding& finding : findings) {
      if (!finding.suppressed_by_baseline) ++count;
    }
    return count;
  }
};

// Runs all passes over the tree rooted at `root`; exit-code policy is the
// caller's (main.cc prints and maps to 0/1/2).
AnalyzeResult AnalyzeTree(const std::string& root, const AnalyzeOptions& options);

// Proves every rule fires on its fixture (tools/lint_fixtures/ for the ten
// migrated rules, tools/crn_analyze/fixtures/ for the new passes) and that
// clean fixtures stay silent. Returns the number of failures.
int RunSelfTest(const std::string& root);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_ANALYZER_H_
