#include "crn_analyze/baseline.h"

#include <cctype>
#include <fstream>

namespace crn::analyze {

namespace {

constexpr std::size_t kMinJustificationChars = 15;

std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

Baseline LoadBaseline(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  if (!in) {
    baseline.errors.push_back(path + ": cannot open baseline file");
    return baseline;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // rule|path|fingerprint|justification — justification may itself
    // contain '|', so split only the first three separators.
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (int field = 0; field < 3; ++field) {
      const std::size_t bar = trimmed.find('|', start);
      if (bar == std::string::npos) break;
      fields.push_back(trimmed.substr(start, bar - start));
      start = bar + 1;
    }
    if (fields.size() != 3) {
      baseline.errors.push_back(
          path + ":" + std::to_string(line_number) +
          ": expected 'rule|path|fingerprint|justification'");
      continue;
    }
    BaselineEntry entry;
    entry.rule = Trim(fields[0]);
    entry.path = Trim(fields[1]);
    entry.fingerprint = Trim(fields[2]);
    entry.justification = Trim(trimmed.substr(start));
    entry.source_line = line_number;
    std::size_t reason_chars = 0;
    for (char c : entry.justification) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) ++reason_chars;
    }
    if (reason_chars < kMinJustificationChars) {
      baseline.errors.push_back(
          path + ":" + std::to_string(line_number) + ": entry for [" +
          entry.rule + "] " + entry.path +
          " lacks a justification — say why this violation is safe");
      continue;
    }
    if (entry.rule.empty() || entry.path.empty() || entry.fingerprint.empty()) {
      baseline.errors.push_back(path + ":" + std::to_string(line_number) +
                                ": empty rule/path/fingerprint field");
      continue;
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::vector<std::string> ApplyBaseline(Baseline& baseline,
                                       std::vector<Finding>& findings) {
  for (Finding& finding : findings) {
    for (BaselineEntry& entry : baseline.entries) {
      if (entry.rule == finding.rule && entry.path == finding.path &&
          entry.fingerprint == finding.fingerprint) {
        finding.suppressed_by_baseline = true;
        entry.used = true;
        break;
      }
    }
  }
  std::vector<std::string> unused;
  for (const BaselineEntry& entry : baseline.entries) {
    if (!entry.used) {
      unused.push_back("unused baseline entry (line " +
                       std::to_string(entry.source_line) + "): [" + entry.rule +
                       "] " + entry.path + " " + entry.fingerprint);
    }
  }
  return unused;
}

}  // namespace crn::analyze
