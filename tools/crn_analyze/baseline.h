// Checked-in baseline: the set of findings that are known, intentional, and
// individually justified. The tree scan fails only on findings NOT in the
// baseline, so new violations break the build while grandfathered ones are
// tracked (not silently lost — they ship in the SARIF output with a
// suppression record).
//
// File format (tools/crn_analyze_baseline.txt), one entry per line:
//
//   <rule>|<path>|<fingerprint>|<justification>
//
// `fingerprint` is the finding's stable identity (printed with each new
// finding, so adding an entry is copy-paste): the whitespace-normalized
// scrubbed line for per-line rules, "include=<target>" for layering.
// `justification` is MANDATORY and must say why the violation is safe —
// a baseline entry without a real reason is rejected (exit 2), the same
// policy the suppression-justification rule applies to inline markers.
// `#` lines and blank lines are comments. Unused entries are warnings, not
// failures: prune them when the code they covered goes away.
#ifndef CRN_ANALYZE_BASELINE_H_
#define CRN_ANALYZE_BASELINE_H_

#include <string>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::string fingerprint;
  std::string justification;
  int source_line = 0;  // line in the baseline file, for diagnostics
  bool used = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::vector<std::string> errors;  // malformed / unjustified entries
};

Baseline LoadBaseline(const std::string& path);

// Marks findings matching a baseline entry (rule+path+fingerprint) as
// suppressed and the entry as used. Returns the unused entries' messages.
std::vector<std::string> ApplyBaseline(Baseline& baseline,
                                       std::vector<Finding>& findings);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_BASELINE_H_
