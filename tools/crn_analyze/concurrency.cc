#include <cstddef>
#include <string>
#include <vector>

#include "crn_analyze/passes.h"
#include "crn_analyze/rules.h"

namespace crn::analyze {

namespace {

bool IsPunct(const Token& token, char c) {
  return token.kind == TokenKind::kPunct && token.text.size() == 1 &&
         token.text[0] == c;
}

bool IsConstLikeKeyword(const Token& token) {
  return token.kind == TokenKind::kIdentifier &&
         (token.text == "const" || token.text == "constexpr" ||
          token.text == "constinit");
}

// Classifies the declaration following a `static` / `thread_local` keyword.
// A variable declaration reaches `=`, `;`, or a brace initializer before any
// `(`; anything with `(` first is a function (or constructor-style init,
// which we accept missing — the codebase brace-initializes). Const-qualified
// declarations are immutable and therefore safe to share.
bool IsMutableVariableDecl(const std::vector<Token>& tokens, std::size_t i) {
  constexpr std::size_t kMaxDeclTokens = 48;
  for (std::size_t j = i + 1; j < tokens.size() && j < i + kMaxDeclTokens;
       ++j) {
    const Token& token = tokens[j];
    if (IsConstLikeKeyword(token)) return false;
    if (IsPunct(token, '(')) return false;  // function declaration
    if (IsPunct(token, '=') || IsPunct(token, ';') || IsPunct(token, '{')) {
      return true;
    }
    if (IsPunct(token, '}')) return false;  // ran out of the scope
  }
  return false;
}

}  // namespace

std::vector<Finding> RunConcurrencyDisciplinePass(const SourceFile& file) {
  std::vector<Finding> findings;
  if (!StartsWith(file.logical_path, "src/")) return findings;
  const std::vector<Token>& tokens = file.lex.tokens;

  auto add = [&](int line, std::string message) {
    const std::size_t index = line > 0 ? static_cast<std::size_t>(line - 1) : 0;
    if (index < file.raw_lines.size() &&
        file.raw_lines[index].find("crn-lint-ok") != std::string::npos) {
      return;
    }
    const std::string& scrubbed =
        index < file.lex.scrubbed.size() ? file.lex.scrubbed[index] : "";
    findings.push_back(Finding{file.logical_path, line,
                               "concurrency-discipline", std::move(message),
                               NormalizeForFingerprint(scrubbed), false});
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;

    // Mutable static / thread_local state: every RunSweep cell callback and
    // ThreadPool job in the process can reach it, so it is both a data race
    // and a determinism leak across --jobs values.
    if ((token.text == "static" || token.text == "thread_local") &&
        IsMutableVariableDecl(tokens, i)) {
      add(token.line,
          "mutable " + token.text +
              " state is shared across ParallelRunner cells and ThreadPool "
              "jobs (data race + determinism leak across --jobs); pass "
              "state through the cell's context instead");
    }

    // A lambda with a by-reference capture submitted straight to the pool:
    // the captured locals are shared mutable state across jobs unless every
    // capture is immutable — which the analyzer cannot prove, so the site
    // must justify itself with a crn-lint-ok reason.
    if (token.text == "Submit" && i + 3 < tokens.size() &&
        IsPunct(tokens[i + 1], '(') && IsPunct(tokens[i + 2], '[') &&
        IsPunct(tokens[i + 3], '&')) {
      add(token.line,
          "by-reference capture submitted to the ThreadPool shares mutable "
          "locals across jobs; capture by value, or justify with "
          "crn-lint-ok why every by-ref capture is safe");
    }
  }

  return findings;
}

}  // namespace crn::analyze
