#include <cstddef>
#include <string>
#include <vector>

#include "crn_analyze/passes.h"
#include "crn_analyze/rules.h"

namespace crn::analyze {

namespace {

bool IsIdent(const Token& token, const char* text) {
  return token.kind == TokenKind::kIdentifier && token.text == text;
}

bool IsPunct(const Token& token, char c) {
  return token.kind == TokenKind::kPunct && token.text.size() == 1 &&
         token.text[0] == c;
}

// True when tokens[i..] spells `std::<name><` for one of `names`. On match,
// sets `after_open` to the index just past the `<`.
bool MatchesStdTemplate(const std::vector<Token>& tokens, std::size_t i,
                        const std::vector<const char*>& names,
                        std::size_t& after_open) {
  if (i + 4 >= tokens.size()) return false;
  if (!IsIdent(tokens[i], "std") || !IsPunct(tokens[i + 1], ':') ||
      !IsPunct(tokens[i + 2], ':')) {
    return false;
  }
  const Token& name = tokens[i + 3];
  bool known = false;
  for (const char* candidate : names) {
    if (IsIdent(name, candidate)) known = true;
  }
  if (!known || !IsPunct(tokens[i + 4], '<')) return false;
  after_open = i + 5;
  return true;
}

// Walks the first template argument starting just past `<`; returns true
// when its last token is `*` (a raw-pointer type). Bounded so a mismatched
// `<` (comparison operator) cannot run away.
bool FirstTemplateArgIsPointer(const std::vector<Token>& tokens,
                               std::size_t after_open) {
  constexpr std::size_t kMaxArgTokens = 64;
  int depth = 1;
  bool last_was_star = false;
  for (std::size_t j = after_open;
       j < tokens.size() && j < after_open + kMaxArgTokens; ++j) {
    const Token& token = tokens[j];
    if (IsPunct(token, '<')) ++depth;
    if (IsPunct(token, '>')) {
      --depth;
      if (depth == 0) return last_was_star;
    }
    if (depth == 1 && IsPunct(token, ',')) return last_was_star;
    last_was_star = IsPunct(token, '*');
  }
  return false;
}

// Names of variables declared as std::vector<T*> in this file (the
// declaration style heuristic the unordered-iteration rule already uses).
std::vector<std::string> PointerVectorNames(const std::vector<Token>& tokens) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::size_t after_open = 0;
    if (!MatchesStdTemplate(tokens, i, {"vector"}, after_open)) continue;
    if (!FirstTemplateArgIsPointer(tokens, after_open)) continue;
    // Find the matching `>`, skip declarator decorations (`&`, `*`,
    // `const`), then take the identifier as the variable name. This covers
    // both `std::vector<T*> v` and `std::vector<T*>& param`.
    int depth = 1;
    std::size_t j = after_open;
    for (; j < tokens.size() && depth > 0; ++j) {
      if (IsPunct(tokens[j], '<')) ++depth;
      if (IsPunct(tokens[j], '>')) --depth;
    }
    while (j < tokens.size() &&
           (IsPunct(tokens[j], '&') || IsPunct(tokens[j], '*') ||
            IsIdent(tokens[j], "const"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      names.push_back(tokens[j].text);
    }
  }
  return names;
}

}  // namespace

std::vector<Finding> RunDeterminismTaintPass(const SourceFile& file) {
  std::vector<Finding> findings;
  if (!StartsWith(file.logical_path, "src/")) return findings;
  const std::vector<Token>& tokens = file.lex.tokens;

  auto add = [&](int line, std::string message) {
    const std::size_t index = line > 0 ? static_cast<std::size_t>(line - 1) : 0;
    if (index < file.raw_lines.size() &&
        file.raw_lines[index].find("crn-lint-ok") != std::string::npos) {
      return;
    }
    const std::string& scrubbed =
        index < file.lex.scrubbed.size() ? file.lex.scrubbed[index] : "";
    findings.push_back(Finding{file.logical_path, line, "determinism-taint",
                               std::move(message),
                               NormalizeForFingerprint(scrubbed), false});
  };

  // Pointer-keyed associative containers and pointer hashing: iteration /
  // ordering / hash values depend on allocation addresses, which vary run to
  // run and across ParallelRunner job counts.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::size_t after_open = 0;
    if (MatchesStdTemplate(tokens, i,
                           {"map", "set", "unordered_map", "unordered_set"},
                           after_open) &&
        FirstTemplateArgIsPointer(tokens, after_open)) {
      add(tokens[i].line,
          "container keyed on pointer identity: ordering/iteration follows "
          "allocation addresses, which differ run to run; key on NodeId or "
          "another stable id");
    }
    if (MatchesStdTemplate(tokens, i, {"hash"}, after_open) &&
        FirstTemplateArgIsPointer(tokens, after_open)) {
      add(tokens[i].line,
          "std::hash over a raw pointer hashes the allocation address; hash "
          "a stable id instead");
    }
  }

  // Sorting a vector of pointers with the default operator< orders
  // simulation state by address.
  const std::vector<std::string> pointer_vectors = PointerVectorNames(tokens);
  for (std::size_t i = 0; i < file.lex.scrubbed.size(); ++i) {
    const std::string& line = file.lex.scrubbed[i];
    if (line.empty() || !ContainsCallOf(line, "sort")) continue;
    for (const std::string& name : pointer_vectors) {
      if (line.find(name + ".begin()") != std::string::npos) {
        add(static_cast<int>(i) + 1,
            "sorting '" + name +
                "' compares raw pointers: the order is the allocator's, not "
                "the simulation's; sort by a stable key");
      }
    }
  }

  // Wall-clock / process-identity value sources. The wall-clock rule already
  // bans the <chrono> clocks; these are the C-library leaks that could seed
  // an Rng or flow into sim::TimeNs arithmetic unnoticed.
  for (std::size_t i = 0; i < file.lex.scrubbed.size(); ++i) {
    const std::string& line = file.lex.scrubbed[i];
    if (line.empty()) continue;
    for (const char* source : {"time", "clock", "gettimeofday", "getpid"}) {
      if (ContainsCallOf(line, source)) {
        add(static_cast<int>(i) + 1,
            std::string(source) +
                "() is a wall-clock/process-identity source; simulation "
                "values must derive from the seed and sim::TimeNs only");
      }
    }
  }

  return findings;
}

}  // namespace crn::analyze
