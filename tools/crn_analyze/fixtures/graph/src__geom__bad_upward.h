// Graph fixture (logical path src/geom/bad_upward.h): geometry (rank 1)
// reaching up into the MAC layer (rank 3) — [layering] must fire on the
// include.
#ifndef CRN_GEOM_BAD_UPWARD_H_
#define CRN_GEOM_BAD_UPWARD_H_

#include "mac/packet.h"

#endif  // CRN_GEOM_BAD_UPWARD_H_
