// Graph fixture (logical path src/geom/cyc_a.h): one half of a deliberate
// include cycle — [include-cycle] must fire on the pair.
#ifndef CRN_GEOM_CYC_A_H_
#define CRN_GEOM_CYC_A_H_

#include "geom/cyc_b.h"

namespace crn::geom {
struct CycA {
  CycB* peer = nullptr;
};
}  // namespace crn::geom

#endif  // CRN_GEOM_CYC_A_H_
