// Graph fixture (logical path src/geom/cyc_b.h): the other half of the
// deliberate include cycle.
#ifndef CRN_GEOM_CYC_B_H_
#define CRN_GEOM_CYC_B_H_

#include "geom/cyc_a.h"

namespace crn::geom {
struct CycB {
  CycA* peer = nullptr;
};
}  // namespace crn::geom

#endif  // CRN_GEOM_CYC_B_H_
