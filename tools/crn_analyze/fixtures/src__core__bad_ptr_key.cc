// Analyzer fixture (logical path src/core/bad_ptr_key.cc): associative
// containers keyed on raw pointers order state by allocation address —
// [determinism-taint] must fire on both declarations.
#include <map>
#include <unordered_set>

namespace crn::core {

struct Node {
  int id = 0;
};

struct BadRegistry {
  std::map<const Node*, int> rank_by_node;
  std::unordered_set<Node*> dirty;
};

}  // namespace crn::core
