// Analyzer fixture (logical path src/core/bad_ptr_sort.cc): sorting a
// vector of pointers with the default operator< orders simulation state by
// allocator whim — [determinism-taint] must fire on the sort call.
#include <algorithm>
#include <vector>

namespace crn::core {

struct Node {
  int id = 0;
};

inline void BadOrdering(std::vector<Node*>& frontier) {
  std::sort(frontier.begin(), frontier.end());
}

}  // namespace crn::core
