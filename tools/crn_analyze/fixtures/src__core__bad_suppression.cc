// Analyzer fixture (logical path src/core/bad_suppression.cc): a bare
// crn-lint-ok marker suppresses its line's finding but carries no reason —
// [suppression-justification] must fire on it (and must not be silenced by
// the marker itself).
namespace crn::core {

double BadNarrow(double value) {
  float narrowed = static_cast<float>(value);  // crn-lint-ok
  return narrowed;
}

}  // namespace crn::core
