// Analyzer fixture (logical path src/core/clean_tokenizer.cc): constructs
// the legacy line-regex scanner mishandled. The tokenizer must keep every
// one of them out of rule matching — zero findings.
#include <string>

namespace crn::core {

// Digit separators: the ' characters are numeric punctuation, not the
// start of character literals that would swallow the rest of the line.
inline constexpr long kEventBudget = 1'000'000;
inline constexpr double kScaled = 1'024.5;

// A line comment continued with a backslash splice \
   stays a comment here, even though rand() and float appear on this line.

/* A multi-line block comment:
   std::mt19937 engine; srand(42); steady_clock::now();
   none of it is code. */

// Raw strings spanning lines, with and without a delimiter.
inline std::string RawDoc() {
  return R"doc(
    std::mt19937 rng; rand(); srand(7);
    float narrowing = 0.f; steady_clock reads; throw "boom";
    std::cout << "library io"; std::pow(10, x / 10.0);
  )doc";
}

inline std::string RawPlain() {
  return R"(second form: rand() and float and throw)";
}

double CleanScale(double value) { return value * 2.0; }

}  // namespace crn::core
