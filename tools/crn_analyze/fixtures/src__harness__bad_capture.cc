// Analyzer fixture (logical path src/harness/bad_capture.cc): a lambda
// with a by-reference capture submitted straight to the ThreadPool shares
// mutable locals across jobs — [concurrency-discipline] must fire on the
// Submit call.
#include <vector>

namespace crn::harness {

struct FakePool {
  template <typename F>
  void Submit(F&& fn) {
    fn();
  }
};

inline int BadAccumulate(FakePool& pool, const std::vector<int>& values) {
  int total = 0;
  for (int value : values) {
    pool.Submit([&total, value] { total += value; });
  }
  return total;
}

}  // namespace crn::harness
