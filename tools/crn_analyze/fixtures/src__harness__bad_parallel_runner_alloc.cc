// Analyzer fixture (logical path src/harness/bad_parallel_runner_alloc.cc):
// the pre-work-stealing dispatch shape — a std::function constructed and a
// task node heap-allocated for every cell of the fan-out —
// [hot-path-alloc] must fire on the per-cell construction sites. Taking
// the callback by const std::function& stays exempt (one object per
// fan-out).
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace crn::harness {

struct TaskNode {
  std::int64_t index = 0;
};

inline void BadForEachIndex(std::int64_t count,
                            const std::function<void(std::int64_t)>& fn) {
  std::vector<std::function<void()>> queue;
  std::vector<std::unique_ptr<TaskNode>> nodes;
  for (std::int64_t i = 0; i < count; ++i) {
    std::function<void()> cell = [fn, i] { fn(i); };
    queue.push_back(cell);
    nodes.push_back(std::make_unique<TaskNode>());
  }
  for (const auto& cell : queue) cell();
}

}  // namespace crn::harness
