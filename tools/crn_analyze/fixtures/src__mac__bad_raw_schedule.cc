// Fixture: fires [raw-schedule-in-mac]. A MAC-layer state machine arming a
// backoff through the fire-and-forget entry point with a capturing lambda:
// the callback state is allocated per event and the pending fire cannot be
// cancelled through the arena's generation check. The Timer API (bind once,
// re-arm) is the required shape in src/mac.
#include "sim/simulator.h"

namespace crn::mac {

void ArmBackoff(sim::Simulator& sim, int node, sim::TimeNs delay) {
  sim.ScheduleOnceAfter(delay, sim::EventPriority::kTimerExpiry,
                        [&sim, node] { (void)node; });
}

}  // namespace crn::mac
