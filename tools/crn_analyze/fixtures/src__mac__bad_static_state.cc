// Analyzer fixture (logical path src/mac/bad_static_state.cc): mutable
// static / thread_local state is shared across ParallelRunner cells —
// [concurrency-discipline] must fire on both declarations.
#include <cstdint>

namespace crn::mac {

namespace {
std::int64_t NextAttemptId() {
  static std::int64_t attempt_counter = 0;
  return ++attempt_counter;
}
}  // namespace

thread_local std::int64_t t_last_attempt = 0;

std::int64_t RecordAttempt() {
  t_last_attempt = NextAttemptId();
  return t_last_attempt;
}

}  // namespace crn::mac
