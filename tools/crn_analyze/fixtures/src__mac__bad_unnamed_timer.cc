// Fixture: fires [unnamed-timer-kind]. A MAC-layer timer bound through the
// kind-less Bind overload: every arm/fire it produces decodes as "unnamed"
// in flight-recorder dumps, sched.* metrics, and crn_trace causal chains.
// The named overload — Bind(sim, priority, "layer.kind", owner, fn) — is
// the required shape in src/mac. The string sits within three lines of the
// call, so the clean sites in collection_mac.cc stay clean.
#include "sim/simulator.h"

namespace crn::mac {

struct Agent {
  sim::Timer expiry_timer;
};

void BindExpiry(sim::Simulator& sim, Agent& agent) {
  agent.expiry_timer.Bind(sim, sim::EventPriority::kTimerExpiry,
                          sim::EventFn([] {}));
}

}  // namespace crn::mac
