// Fixture: fires [raw-artifact-write]. An exporter streaming metrics
// straight into an std::ofstream: a crash (or the crash-recovery soak's
// SIGKILL) between open and close leaves a truncated file on disk that a
// resumed sweep then tries to parse. The required shape is render-to-string
// plus harness::WriteFileAtomic, so the destination path only ever holds a
// complete artifact.
#include <fstream>
#include <string>

namespace crn::obs {

void ExportSnapshot(const std::string& path, const std::string& rendered) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << rendered;
}

}  // namespace crn::obs
