// Analyzer fixture (logical path src/sim/bad_time_seed.cc): seeding from
// the wall clock or process identity makes every run unique —
// [determinism-taint] must fire on both calls.
#include <ctime>
#include <cstdint>

namespace crn::sim {

inline std::uint64_t BadSeed() {
  return static_cast<std::uint64_t>(std::time(nullptr));
}

inline std::uint64_t BadTick() {
  return static_cast<std::uint64_t>(clock());
}

}  // namespace crn::sim
