#include "crn_analyze/include_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "crn_analyze/rules.h"

namespace crn::analyze {

namespace {

const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0}, {"geom", 1},     {"sim", 1},   {"graph", 2},
      {"spectrum", 2}, {"pu", 2},     {"mac", 3},   {"routing", 3},
      {"obs", 4},    {"faults", 5},   {"core", 6},  {"harness", 7},
  };
  return kRanks;
}

// "src/mac/packet.h" → "mac"; "" when not a two-level src/ path.
std::string LayerDirOf(const std::string& logical_path) {
  if (!StartsWith(logical_path, "src/")) return "";
  const std::size_t start = 4;
  const std::size_t slash = logical_path.find('/', start);
  if (slash == std::string::npos) return "";
  return logical_path.substr(start, slash - start);
}

bool LineSuppressed(const SourceFile& file, int line) {
  const std::size_t index = line > 0 ? static_cast<std::size_t>(line - 1) : 0;
  return index < file.raw_lines.size() &&
         file.raw_lines[index].find("crn-lint-ok") != std::string::npos;
}

}  // namespace

std::optional<int> LayerRank(const std::string& logical_path) {
  const std::string dir = LayerDirOf(logical_path);
  const auto it = LayerRanks().find(dir);
  if (it == LayerRanks().end()) return std::nullopt;
  return it->second;
}

std::vector<Finding> RunIncludeGraphPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Deterministic order and fast lookup of scanned src files.
  std::vector<const SourceFile*> src_files;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) {
    if (!StartsWith(file.logical_path, "src/")) continue;
    src_files.push_back(&file);
    by_path[file.logical_path] = &file;
  }
  std::sort(src_files.begin(), src_files.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->logical_path < b->logical_path;
            });

  // Layering: every quoted include must stay at the same rank or go down.
  for (const SourceFile* file : src_files) {
    const std::optional<int> source_rank = LayerRank(file->logical_path);
    for (const IncludeDirective& include : file->lex.includes) {
      if (include.angled) continue;  // system/third-party headers
      if (LineSuppressed(*file, include.line)) continue;
      const std::string target_path = "src/" + include.target;
      const std::optional<int> target_rank = LayerRank(target_path);
      if (!target_rank.has_value()) {
        findings.push_back(Finding{
            file->logical_path, include.line, "layering",
            "include \"" + include.target +
                "\" is not under a known src/ layer; quoted includes must "
                "name a layer directory (see DESIGN.md §11)",
            "include=" + include.target, false});
        continue;
      }
      if (source_rank.has_value() && *target_rank > *source_rank) {
        findings.push_back(Finding{
            file->logical_path, include.line, "layering",
            "upward include: " + LayerDirOf(file->logical_path) + " (rank " +
                std::to_string(*source_rank) + ") must not include " +
                LayerDirOf(target_path) + " (rank " +
                std::to_string(*target_rank) +
                "); invert the dependency or move the shared piece down "
                "(see DESIGN.md §11)",
            "include=" + include.target, false});
      }
    }
  }

  // Cycle detection over quoted includes that resolve to scanned src files.
  // Iterative DFS with tri-color marking; each cycle is reported once, on
  // its lexicographically smallest member.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::set<std::string> reported_cycles;
  for (const SourceFile* file : src_files) color[file->logical_path] = Color::kWhite;

  auto edges_of = [&](const std::string& path) {
    std::vector<std::pair<std::string, int>> edges;  // (target path, line)
    const auto it = by_path.find(path);
    if (it == by_path.end()) return edges;
    for (const IncludeDirective& include : it->second->lex.includes) {
      if (include.angled) continue;
      const std::string target_path = "src/" + include.target;
      if (by_path.count(target_path) != 0) {
        edges.emplace_back(target_path, include.line);
      }
    }
    return edges;
  };

  std::vector<std::string> path_stack;
  const std::function<void(const std::string&)> visit =
      [&](const std::string& current) {
        color[current] = Color::kGray;
        path_stack.push_back(current);
        for (const auto& [target, line] : edges_of(current)) {
          if (color[target] == Color::kGray) {
            // Back edge: the cycle is the path_stack suffix from `target`.
            const auto begin =
                std::find(path_stack.begin(), path_stack.end(), target);
            std::vector<std::string> cycle(begin, path_stack.end());
            const auto smallest = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), smallest, cycle.end());
            std::string chain;
            for (const std::string& node : cycle) {
              if (!chain.empty()) chain += " -> ";
              chain += node;
            }
            chain += " -> " + cycle.front();
            if (reported_cycles.insert(chain).second) {
              findings.push_back(Finding{
                  cycle.front(), line, "include-cycle",
                  "include cycle: " + chain +
                      "; break it by inverting one edge or extracting the "
                      "shared declarations into a lower layer",
                  "cycle=" + chain, false});
            }
          } else if (color[target] == Color::kWhite) {
            visit(target);
          }
        }
        path_stack.pop_back();
        color[current] = Color::kBlack;
      };
  for (const SourceFile* root : src_files) {
    if (color[root->logical_path] == Color::kWhite) {
      visit(root->logical_path);
    }
  }

  return findings;
}

}  // namespace crn::analyze
