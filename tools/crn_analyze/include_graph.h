// Include-graph pass: extracts #include edges across src/, enforces the
// layer DAG, and rejects include cycles.
//
// The layer ranks (a file may include same-rank or lower-rank layers only;
// see DESIGN.md §11 for the diagram):
//
//   rank 0  common
//   rank 1  geom, sim
//   rank 2  graph, spectrum, pu
//   rank 3  mac, routing
//   rank 4  obs
//   rank 5  faults
//   rank 6  core
//   rank 7  harness
//
// Rules emitted:
//   layering       a src/ file includes a higher-rank layer (upward
//                  include), or a quoted repo-style include whose top
//                  directory is not a known layer
//   include-cycle  a cycle among src/ files' quoted includes (reported once
//                  per cycle, on the file that closes it)
//
// tests/ and bench/ are not constrained: they sit above everything and may
// include any layer.
#ifndef CRN_ANALYZE_INCLUDE_GRAPH_H_
#define CRN_ANALYZE_INCLUDE_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

// Rank of the layer owning `logical_path` ("src/mac/packet.h" → 3), or
// nullopt when the path is not under a known src/ layer.
std::optional<int> LayerRank(const std::string& logical_path);

std::vector<Finding> RunIncludeGraphPass(const std::vector<SourceFile>& files);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_INCLUDE_GRAPH_H_
