#include "crn_analyze/lexer.h"

#include <cctype>
#include <cstddef>

namespace crn::analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "u8R" || ident == "UR" ||
         ident == "LR";
}

}  // namespace

LexResult Lex(const std::string& content) {
  LexResult result;
  result.scrubbed.emplace_back();
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  // Preprocessor context: after `#` at the start of a logical line we watch
  // for `include` and then capture its target.
  enum class Pp { kNone, kHash, kInclude };
  Pp pp = Pp::kNone;
  bool at_line_start = true;

  auto out = [&]() -> std::string& { return result.scrubbed.back(); };
  auto newline = [&] {
    ++line;
    result.scrubbed.emplace_back();
  };
  // Consumes a backslash-newline splice (the logical line continues, so pp
  // and line-start state are preserved). Returns true if one was consumed.
  auto splice = [&]() -> bool {
    if (content[i] != '\\') return false;
    std::size_t j = i + 1;
    if (j < n && content[j] == '\r') ++j;
    if (j < n && content[j] == '\n') {
      i = j + 1;
      newline();
      return true;
    }
    return false;
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      newline();
      pp = Pp::kNone;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;
      continue;
    }
    if (splice()) continue;
    // Line comment (spliced trailing backslashes continue it).
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      i += 2;
      while (i < n) {
        if (splice()) continue;
        if (content[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Block comment, possibly multi-line.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      i += 2;
      while (i < n) {
        if (content[i] == '*' && i + 1 < n && content[i + 1] == '/') {
          i += 2;
          break;
        }
        if (content[i] == '\n') newline();
        ++i;
      }
      out().push_back(' ');
      continue;
    }
    // String literal (non-raw; raw strings are detected from their prefix
    // identifier below).
    if (c == '"') {
      const int start_line = line;
      ++i;
      std::string value;
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\') {
          if (splice()) continue;
          i += 2;
          continue;
        }
        if (content[i] == '"') {
          ++i;
          break;
        }
        value.push_back(content[i]);
        ++i;
      }
      result.tokens.push_back(Token{TokenKind::kString, value, start_line});
      if (pp == Pp::kInclude) {
        result.includes.push_back(IncludeDirective{value, start_line, false});
        pp = Pp::kNone;
      }
      out().push_back(' ');
      at_line_start = false;
      continue;
    }
    // Character literal. Reached only when `'` starts a literal — a `'`
    // inside a number is consumed by the number path below.
    if (c == '\'') {
      const int start_line = line;
      ++i;
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\') {
          i += 2;
          continue;
        }
        if (content[i] == '\'') {
          ++i;
          break;
        }
        ++i;
      }
      result.tokens.push_back(Token{TokenKind::kCharLiteral, "", start_line});
      out().push_back(' ');
      at_line_start = false;
      continue;
    }
    // pp-number: digits, identifier chars, dots, digit separators, and
    // signed exponents.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])) != 0)) {
      std::string num;
      while (i < n) {
        const char d = content[i];
        if (IsIdentChar(d) || d == '.') {
          num.push_back(d);
          ++i;
          continue;
        }
        if (d == '\'' && i + 1 < n &&
            std::isalnum(static_cast<unsigned char>(content[i + 1])) != 0) {
          num.push_back(d);
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty() &&
            (std::tolower(static_cast<unsigned char>(num.back())) == 'e' ||
             std::tolower(static_cast<unsigned char>(num.back())) == 'p')) {
          num.push_back(d);
          ++i;
          continue;
        }
        break;
      }
      result.tokens.push_back(Token{TokenKind::kNumber, num, line});
      out() += num;
      at_line_start = false;
      continue;
    }
    // Identifier — or the prefix of a raw string literal.
    if (IsIdentStart(c)) {
      const int start_line = line;
      std::string ident;
      while (i < n && IsIdentChar(content[i])) {
        ident.push_back(content[i]);
        ++i;
      }
      if (i < n && content[i] == '"' && IsRawStringPrefix(ident)) {
        ++i;  // opening quote
        std::string delim;
        while (i < n && content[i] != '(' && content[i] != '\n') {
          delim.push_back(content[i]);
          ++i;
        }
        if (i < n && content[i] == '(') ++i;
        const std::string closer = ")" + delim + "\"";
        while (i < n) {
          if (content[i] == '\n') {
            newline();
            ++i;
            continue;
          }
          if (content.compare(i, closer.size(), closer) == 0) {
            i += closer.size();
            break;
          }
          ++i;
        }
        result.tokens.push_back(Token{TokenKind::kString, "", start_line});
        out().push_back(' ');
        at_line_start = false;
        continue;
      }
      result.tokens.push_back(
          Token{TokenKind::kIdentifier, ident, start_line});
      out() += ident;
      if (pp == Pp::kHash) pp = ident == "include" ? Pp::kInclude : Pp::kNone;
      at_line_start = false;
      continue;
    }
    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      pp = Pp::kHash;
      out().push_back('#');
      result.tokens.push_back(Token{TokenKind::kPunct, "#", line});
      at_line_start = false;
      ++i;
      continue;
    }
    // Angled include target.
    if (c == '<' && pp == Pp::kInclude) {
      const int start_line = line;
      ++i;
      std::string target;
      while (i < n && content[i] != '>' && content[i] != '\n') {
        target.push_back(content[i]);
        ++i;
      }
      if (i < n && content[i] == '>') ++i;
      result.includes.push_back(IncludeDirective{target, start_line, true});
      pp = Pp::kNone;
      out().push_back(' ');
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      out().push_back(c);
      ++i;
      continue;
    }
    result.tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
    out().push_back(c);
    at_line_start = false;
    ++i;
  }
  return result;
}

}  // namespace crn::analyze
