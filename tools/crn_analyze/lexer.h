// A lightweight C++ tokenizer for static analysis — not a full lexer, but
// exact where the line-regex legacy scanner was approximate:
//
//   * raw string literals R"delim(...)delim" spanning any number of lines
//   * block comments spanning lines, line comments with splices (`\` + NL)
//   * digit separators (1'000'000) — a `'` inside a number never opens a
//     character literal
//   * preprocessor directives with line continuations, and #include target
//     extraction (quoted and angled) for the include-graph pass
//
// Output is three synchronized views of the same file:
//   scrubbed — per-line text with comments and literal contents blanked,
//              byte content only from real code (the view the migrated
//              legacy rules match against)
//   tokens   — identifiers / numbers / string markers / punctuation with
//              1-based line numbers (the view the taint and concurrency
//              passes walk)
//   includes — every #include directive with its target
#ifndef CRN_ANALYZE_LEXER_H_
#define CRN_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace crn::analyze {

enum class TokenKind { kIdentifier, kNumber, kString, kCharLiteral, kPunct };

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;  // identifier/number/punct spelling; literal value for strings
  int line = 0;      // 1-based
};

struct IncludeDirective {
  std::string target;
  int line = 0;
  bool angled = false;
};

struct LexResult {
  std::vector<std::string> scrubbed;  // same line count as the input
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
};

LexResult Lex(const std::string& content);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_LEXER_H_
