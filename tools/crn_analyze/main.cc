// crn_analyze — multi-pass static analysis driver for the ADDC codebase.
//
//   crn_analyze [options] <repo_root>
//
//   --self-test               prove every rule fires on its fixture
//   --baseline FILE           suppress findings listed (with justification)
//                             in FILE; new findings still fail
//   --sarif-out FILE          write all findings (incl. baselined, marked
//                             suppressed) as SARIF v2.1.0
//   --compile-commands FILE   scan the TUs listed in compile_commands.json
//                             (plus headers) instead of walking directories
//
// Exit codes: 0 clean (modulo baseline), 1 new findings, 2 unusable input.
#include <iostream>
#include <string>
#include <vector>

#include "crn_analyze/analyzer.h"

namespace {

int Usage() {
  std::cerr << "usage: crn_analyze [--self-test] [--baseline FILE] "
               "[--sarif-out FILE] [--compile-commands FILE] <repo_root>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  bool self_test = false;
  std::string root;
  crn::analyze::AnalyzeOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&](std::string& target) -> bool {
      if (i + 1 >= args.size()) return false;
      target = args[++i];
      return true;
    };
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--baseline") {
      if (!next_value(options.baseline_path)) return Usage();
    } else if (arg == "--sarif-out") {
      if (!next_value(options.sarif_out_path)) return Usage();
    } else if (arg == "--compile-commands") {
      if (!next_value(options.compile_commands_path)) return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (root.empty()) {
      root = arg;
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();

  if (self_test) {
    return crn::analyze::RunSelfTest(root) == 0 ? 0 : 1;
  }

  const crn::analyze::AnalyzeResult result =
      crn::analyze::AnalyzeTree(root, options);
  for (const std::string& error : result.errors) {
    std::cerr << "crn_analyze: error: " << error << "\n";
  }
  if (!result.errors.empty()) return 2;

  int baselined = 0;
  for (const crn::analyze::Finding& finding : result.findings) {
    if (finding.suppressed_by_baseline) {
      ++baselined;
      continue;
    }
    std::cout << finding.path << ":" << finding.line << ": [" << finding.rule
              << "] " << finding.message << "\n";
    // Copy-paste template for an intentional violation (justification must
    // replace the placeholder or the baseline is rejected).
    std::cout << "    baseline entry: " << finding.rule << "|" << finding.path
              << "|" << finding.fingerprint << "|<why this is safe>\n";
  }
  for (const std::string& warning : result.warnings) {
    std::cout << "crn_analyze: warning: " << warning << "\n";
  }
  std::cout << "crn_analyze: " << result.files_scanned << " files scanned, "
            << result.new_finding_count() << " new finding(s), " << baselined
            << " baselined\n";
  return result.new_finding_count() == 0 ? 0 : 1;
}
