// Whole-file token-walk passes, new in crn_analyze (no legacy equivalent):
//
//   determinism-taint       simulation-visible state derived from pointer
//                           identity (std::map/set/unordered_* keyed on a
//                           raw pointer, std::hash over a pointer, sorting a
//                           vector of pointers with operator<) or from
//                           wall-clock/process-identity sources
//                           (time()/clock()/gettimeofday()/getpid()) that
//                           could flow into sim::TimeNs computations.
//   concurrency-discipline  mutable static / thread_local state reachable
//                           from ParallelRunner cell callbacks, and
//                           by-reference lambda captures submitted straight
//                           to the ThreadPool.
//
// Both passes scan src/ only: tests and benches may freely use pointers,
// wall clocks, and shared state for their own bookkeeping.
#ifndef CRN_ANALYZE_PASSES_H_
#define CRN_ANALYZE_PASSES_H_

#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

std::vector<Finding> RunDeterminismTaintPass(const SourceFile& file);
std::vector<Finding> RunConcurrencyDisciplinePass(const SourceFile& file);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_PASSES_H_
