#include "crn_analyze/rules.h"

#include <cctype>
#include <sstream>

namespace crn::analyze {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Names of variables declared in this file with an unordered container
// type. A heuristic, but one that matches the codebase's declaration style.
std::vector<std::string> UnorderedContainerNames(
    const std::vector<std::string>& code) {
  std::vector<std::string> names;
  for (const std::string& line : code) {
    for (const char* type : {"unordered_map", "unordered_set"}) {
      std::size_t pos = line.find(type);
      if (pos == std::string::npos) continue;
      std::size_t i = line.find('<', pos);
      if (i == std::string::npos) continue;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) break;
      }
      if (i >= line.size()) continue;  // multi-line type; skip
      ++i;
      while (i < line.size() && (line[i] == ' ' || line[i] == '&')) ++i;
      std::string name;
      while (i < line.size() && IsIdentChar(line[i])) name.push_back(line[i++]);
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

std::string ExpectedHeaderGuard(const std::string& logical_path) {
  // src/geom/vec2.h ⇒ CRN_GEOM_VEC2_H_
  std::string trimmed = logical_path;
  if (trimmed.rfind("src/", 0) == 0) trimmed = trimmed.substr(4);
  std::string guard = "CRN_";
  for (char c : trimmed) {
    guard.push_back(IsIdentChar(c) ? static_cast<char>(std::toupper(
                                         static_cast<unsigned char>(c)))
                                   : '_');
  }
  guard.push_back('_');
  return guard;
}

// Capture spellings the codebase uses for stateful lambdas. Array indexing
// never produces these shapes, so the match is indexing-proof without a
// full lambda parse.
bool HasCapturingLambda(const std::string& text) {
  for (const char* intro : {"[&", "[=", "[this"}) {
    if (text.find(intro) != std::string::npos) return true;
  }
  return false;
}

constexpr char kSuppressionMarker[] = "crn-lint-ok";
constexpr std::size_t kMinJustificationChars = 8;

// True when the marker on this line carries a `crn-lint-ok: <reason>`
// justification of at least kMinJustificationChars non-space characters.
bool SuppressionIsJustified(const std::string& raw_line) {
  const std::size_t pos = raw_line.find(kSuppressionMarker);
  if (pos == std::string::npos) return true;  // no marker at all
  std::size_t i = pos + sizeof(kSuppressionMarker) - 1;
  if (i >= raw_line.size() || raw_line[i] != ':') return false;
  ++i;
  std::size_t reason_chars = 0;
  for (; i < raw_line.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(raw_line[i])) == 0) {
      ++reason_chars;
    }
  }
  return reason_chars >= kMinJustificationChars;
}

}  // namespace

bool ContainsWord(const std::string& line, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool ContainsCallOf(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < line.size() && line[end] == ' ') ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos = pos + name.size();
  }
  return false;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

std::vector<Finding> RunFileRules(const SourceFile& file) {
  const std::string& logical_path = file.logical_path;
  const std::vector<std::string>& raw_lines = file.raw_lines;
  const std::vector<std::string>& code = file.lex.scrubbed;
  std::vector<Finding> findings;

  const bool in_src = StartsWith(logical_path, "src/");
  const bool is_rng_home = logical_path == "src/common/rng.h";
  const bool is_units_home = logical_path == "src/common/units.h";
  const bool is_header =
      logical_path.size() > 2 &&
      logical_path.compare(logical_path.size() - 2, 2, ".h") == 0;

  auto add = [&](int line_index, const char* rule, std::string message) {
    if (raw_lines[line_index].find(kSuppressionMarker) != std::string::npos) {
      return;
    }
    findings.push_back(Finding{logical_path, line_index + 1, rule,
                               std::move(message),
                               NormalizeForFingerprint(code[line_index]),
                               false});
  };

  // suppression-justification bypasses inline suppression: a bare marker
  // must not be able to silence the rule that polices markers.
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (raw_lines[i].find(kSuppressionMarker) == std::string::npos) continue;
    if (SuppressionIsJustified(raw_lines[i])) continue;
    findings.push_back(
        Finding{logical_path, static_cast<int>(i) + 1,
                "suppression-justification",
                "a crn-lint-ok marker must carry its reason inline: "
                "`crn-lint-ok: <why this is safe here>`",
                NormalizeForFingerprint(raw_lines[i]), false});
  }

  const std::vector<std::string> unordered_names =
      in_src ? UnorderedContainerNames(code) : std::vector<std::string>{};

  // unnamed-timer-kind wants "a non-empty string literal near the Bind
  // call", and literal contents are blanked in the scrubbed view — so the
  // string positions come from the token stream instead.
  const bool in_mac = StartsWith(logical_path, "src/mac/");
  std::vector<bool> line_has_string(in_mac ? code.size() : 0, false);
  if (in_mac) {
    for (const Token& token : file.lex.tokens) {
      if (token.kind == TokenKind::kString && !token.text.empty() &&
          token.line >= 1 && token.line <= static_cast<int>(code.size())) {
        line_has_string[static_cast<std::size_t>(token.line - 1)] = true;
      }
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (line.empty()) continue;

    if (!is_rng_home) {
      if (ContainsWord(line, "mt19937") || ContainsWord(line, "random_device")) {
        add(static_cast<int>(i), "banned-rng",
            "std <random> engines are not bit-stable across standard "
            "libraries; use crn::Rng (common/rng.h)");
      } else if (ContainsCallOf(line, "rand") || ContainsCallOf(line, "srand")) {
        add(static_cast<int>(i), "banned-rng",
            "rand() has global hidden state; use crn::Rng (common/rng.h)");
      }
    }

    if (in_src) {
      if (ContainsWord(line, "system_clock") || ContainsWord(line, "steady_clock") ||
          ContainsWord(line, "high_resolution_clock")) {
        add(static_cast<int>(i), "wall-clock",
            "wall-clock reads break per-seed determinism; simulation state "
            "must depend on sim::TimeNs only");
      }
      if (!is_units_home &&
          (line.find("pow(10") != std::string::npos ||
           line.find("pow (10") != std::string::npos)) {
        add(static_cast<int>(i), "raw-db-conversion",
            "convert dB through DbToLinear()/SirThreshold (common/units.h), "
            "not raw std::pow(10, ...)");
      }
      // ContainsCallOf("Distance") does not match DistanceSquared( — the
      // char after the name must be `(` — so the squared-space idiom the
      // rule steers toward passes untouched.
      const bool in_hot_path =
          (StartsWith(logical_path, "src/mac/") ||
           StartsWith(logical_path, "src/spectrum/")) &&
          logical_path != "src/spectrum/interference.h" &&
          logical_path != "src/spectrum/interference_field.h";
      if (in_hot_path &&
          (ContainsCallOf(line, "pow") || ContainsCallOf(line, "Distance"))) {
        add(static_cast<int>(i), "hot-path-math",
            "per-event pow()/Distance() in the SIR hot path; read gains "
            "through the PairGainCache (spectrum/interference_field.h) and "
            "compare squared distances (geom::DistanceSquared)");
      }
      // MAC state machines must drive recurring work through bind-once
      // sim::Timer slots; a fire-and-forget one-shot with a capturing
      // lambda allocates callback state per event on the hottest layer and
      // dodges the arena's generation liveness check. Both the current
      // (ScheduleOnce*) and pre-overhaul (ScheduleAt/ScheduleAfter) names
      // are matched so old-style code cannot regress back in. The lambda
      // may start on the line after the call, so the scan spans both.
      if (StartsWith(logical_path, "src/mac/")) {
        for (const char* name : {"ScheduleOnce", "ScheduleOnceAfter",
                                 "ScheduleAt", "ScheduleAfter"}) {
          if (!ContainsCallOf(line, name)) continue;
          std::string span = line;
          if (i + 1 < code.size()) span += " " + code[i + 1];
          if (HasCapturingLambda(span)) {
            add(static_cast<int>(i), "raw-schedule-in-mac",
                "direct " + std::string(name) +
                    "() with a capturing lambda in src/mac; bind a "
                    "sim::Timer once and Arm*/re-arm it (sim/simulator.h)");
            break;
          }
        }
      }
      // Every Timer/PeriodicTimer bind site in the MAC must name its event
      // kind: the flight recorder, the sched.* per-kind metrics, and
      // crn_trace causal chains all decode through the kind registry, and
      // an unnamed slot degrades every one of them to "unnamed". The kind
      // string is a literal, so it lives in the token stream (scrubbed text
      // blanks it); argument wrapping may push it up to three lines below
      // the call.
      if (in_mac && ContainsCallOf(line, "Bind")) {
        bool named = false;
        for (std::size_t j = i; j < code.size() && j <= i + 3 && !named; ++j) {
          named = line_has_string[j];
        }
        if (!named) {
          add(static_cast<int>(i), "unnamed-timer-kind",
              "Timer::Bind in src/mac without a named event kind; use the "
              "Bind(sim, priority, \"layer.kind\", owner, fn) overload so "
              "flight-recorder dumps and sched.* metrics stay decodable");
        }
      }
      // The experiment dispatch layer exists to run millions of cells: a
      // std::function constructed, or a heap node allocated, per cell was
      // exactly the overhead the work-stealing engine removed (chunks are
      // pre-materialized into one flat array). Taking a caller's callback
      // by const std::function& is fine — one object per fan-out, no
      // per-cell construction — so reference parameters are exempt. The
      // legacy ThreadPool's per-job queue is intentional (it is the A/B
      // comparison baseline) and lives in the committed baseline file.
      const bool in_dispatch =
          StartsWith(logical_path, "src/harness/") &&
          (logical_path.find("thread_pool") != std::string::npos ||
           logical_path.find("work_stealing") != std::string::npos ||
           logical_path.find("parallel_runner") != std::string::npos);
      if (in_dispatch) {
        const std::size_t fn_pos = line.find("std::function");
        const bool fn_by_reference =
            fn_pos != std::string::npos &&
            line.find(">&", fn_pos) != std::string::npos;
        // make_unique/make_shared match as words, not calls: the explicit
        // template argument list (`make_shared<T>(...)`) puts `<` where a
        // call matcher expects `(`.
        const bool allocates = (fn_pos != std::string::npos &&
                                !fn_by_reference) ||
                               ContainsWord(line, "make_unique") ||
                               ContainsWord(line, "make_shared") ||
                               ContainsWord(line, "new");
        if (allocates) {
          add(static_cast<int>(i), "hot-path-alloc",
              "per-cell allocation in the experiment dispatch layer; "
              "pre-materialize work into flat arrays (work_stealing.h) or "
              "take callbacks by const std::function& — one object per "
              "fan-out, not per cell");
        }
      }
      const bool in_callback_layer =
          StartsWith(logical_path, "src/sim/") ||
          StartsWith(logical_path, "src/mac/") ||
          StartsWith(logical_path, "src/pu/") ||
          StartsWith(logical_path, "src/faults/") ||
          StartsWith(logical_path, "src/core/");
      if (in_callback_layer && ContainsWord(line, "throw")) {
        add(static_cast<int>(i), "throw-in-callback",
            "an exception unwinding through a simulator event callback "
            "strands half-applied MAC/routing state; use CRN_CHECK for "
            "contract violations or return a structured result "
            "(graph::RepairPlan pattern)");
      }
      if (!StartsWith(logical_path, "src/harness/") &&
          (ContainsWord(line, "cout") || ContainsWord(line, "cerr"))) {
        add(static_cast<int>(i), "library-io",
            "library code must not write to the terminal; return values / "
            "take an std::ostream / use an obs:: sink (src/harness/ is the "
            "I/O layer)");
      }
      // A crash — or the crash-recovery soak's SIGKILL — mid-write leaves a
      // truncated artifact that a resume then tries to parse. The sanctioned
      // ofstream lives in harness/atomic_file.cc behind a justified
      // crn-lint-ok marker; everything else renders to a string and lands it
      // via rename(2). ContainsWord keeps ifstream (reads are torn-safe by
      // construction: a validating reader rejects, it never corrupts) out.
      if (ContainsWord(line, "ofstream") || ContainsCallOf(line, "fopen")) {
        add(static_cast<int>(i), "raw-artifact-write",
            "a direct file write can be torn by a crash mid-write; render "
            "to a string and land it with harness::WriteFileAtomic "
            "(harness/atomic_file.h) so readers only ever see complete "
            "artifacts");
      }
      if (ContainsWord(line, "float")) {
        add(static_cast<int>(i), "float-in-physics",
            "physics runs in double; float narrows results "
            "platform-dependently");
      }
      if ((ContainsWord(line, "static") || ContainsWord(line, "thread_local")) &&
          ContainsWord(line, "Rng") && !ContainsWord(line, "const") &&
          !ContainsWord(line, "constexpr")) {
        add(static_cast<int>(i), "shared-mutable-rng",
            "a static/thread_local Rng is shared or thread-dependent state "
            "under the parallel runner; derive a local Rng from the cell's "
            "(seed, point, rep, algorithm) tuple instead");
      }
      for (const std::string& name : unordered_names) {
        const bool range_for = line.find("for") != std::string::npos &&
                               line.find(": " + name) != std::string::npos;
        const bool explicit_iter =
            line.find(name + ".begin()") != std::string::npos ||
            line.find(name + ".cbegin()") != std::string::npos;
        if (range_for || explicit_iter) {
          add(static_cast<int>(i), "unordered-iteration",
              "iteration order of '" + name +
                  "' is implementation-defined and must not feed "
                  "simulation-visible state");
        }
      }
    }
  }

  if (in_src && is_header) {
    const std::string expected = ExpectedHeaderGuard(logical_path);
    bool found_ifndef = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::istringstream tokens(code[i]);
      std::string directive;
      std::string guard;
      tokens >> directive >> guard;
      if (directive != "#ifndef") continue;
      found_ifndef = true;
      if (guard != expected) {
        add(static_cast<int>(i), "header-guard",
            "guard '" + guard + "' does not match path (expected '" + expected +
                "')");
      }
      break;
    }
    if (!found_ifndef) {
      findings.push_back(Finding{logical_path, 1, "header-guard",
                                 "missing #ifndef include guard (expected '" +
                                     expected + "')",
                                 "missing-include-guard", false});
    }
  }

  return findings;
}

}  // namespace crn::analyze
