// The ten rules migrated from the legacy line-regex checker (crn_lint),
// now matching against tokenizer-scrubbed text so multi-line raw strings,
// block comments, and spliced lines can never leak literal content into a
// match — plus the suppression-justification rule that keeps `crn-lint-ok`
// markers honest.
//
// Rule ids and semantics are unchanged from crn_lint so existing inline
// suppressions keep working:
//   banned-rng, wall-clock, raw-db-conversion, unordered-iteration,
//   float-in-physics, shared-mutable-rng, header-guard, throw-in-callback,
//   hot-path-math, library-io
// plus (new in crn_analyze):
//   suppression-justification — a `crn-lint-ok` marker without a
//   `crn-lint-ok: <reason>` justification is itself a finding, and is
//   exempt from suppression (a bare marker cannot silence itself).
//   raw-schedule-in-mac — src/mac must not pass capturing lambdas to the
//   fire-and-forget ScheduleOnce*/ScheduleAt/ScheduleAfter entry points;
//   MAC state machines bind a sim::Timer once and re-arm it.
//   unnamed-timer-kind — every Timer/PeriodicTimer Bind site in src/mac
//   must carry a named event kind (a non-empty string literal within three
//   lines of the call), so flight-recorder dumps, sched.* metrics, and
//   crn_trace causal chains decode to meaningful names instead of
//   "unnamed".
//   hot-path-alloc — the src/harness dispatch files (thread_pool,
//   work_stealing, parallel_runner) must not construct std::function or
//   heap-allocate (new / make_unique / make_shared) per cell; work is
//   pre-materialized into flat arrays and callbacks travel by
//   const std::function& (one object per fan-out). The legacy ThreadPool's
//   per-job queue is baseline-justified as the A/B comparison engine.
//   raw-artifact-write — src/ code must not open files for writing
//   directly (std::ofstream / fopen); artifacts render to a string and
//   land through harness::WriteFileAtomic (harness/atomic_file.h) so a
//   crash mid-write can never leave a truncated file for a resume or a
//   concurrent reader to trip over. The helper's own ofstream carries the
//   one justified crn-lint-ok suppression.
#ifndef CRN_ANALYZE_RULES_H_
#define CRN_ANALYZE_RULES_H_

#include <string>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

// Shared text helpers (identifier-boundary matching).
bool ContainsWord(const std::string& line, const std::string& word);
bool ContainsCallOf(const std::string& line, const std::string& name);
bool StartsWith(const std::string& text, const std::string& prefix);

// Runs the migrated per-file rules and suppression-justification. Inline
// `crn-lint-ok` suppression is already applied (except, by design, to
// suppression-justification findings).
std::vector<Finding> RunFileRules(const SourceFile& file);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_RULES_H_
