#include "crn_analyze/sarif.h"

#include <array>
#include <cstdio>
#include <map>
#include <string>

namespace crn::analyze {

namespace {

// Rule metadata for the SARIF `rules` array. Keep in sync with rules.h,
// passes.h, and include_graph.h.
const std::map<std::string, std::string>& RuleDescriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"banned-rng", "std <random>/rand() banned outside common/rng.h"},
      {"wall-clock", "no wall-clock reads in src/"},
      {"raw-db-conversion", "dB conversion must go through common/units.h"},
      {"unordered-iteration", "no iteration over unordered containers in src/"},
      {"float-in-physics", "physics runs in double"},
      {"shared-mutable-rng", "no static/thread_local Rng"},
      {"header-guard", "src/ header guards must match their path"},
      {"throw-in-callback", "no throw in event-callback layers"},
      {"hot-path-math", "no pow()/Distance() in the SIR hot path"},
      {"library-io", "no cout/cerr outside src/harness/"},
      {"suppression-justification",
       "crn-lint-ok markers must carry a reason"},
      {"raw-schedule-in-mac",
       "src/mac schedules through bind-once sim::Timer, not capturing "
       "one-shots"},
      {"unnamed-timer-kind",
       "src/mac Timer binds must name their event kind for the flight "
       "recorder"},
      {"raw-artifact-write",
       "src/ artifact writes must land through harness::WriteFileAtomic"},
      {"hot-path-alloc",
       "no per-cell std::function/heap allocation in the harness dispatch "
       "layer"},
      {"layering", "src/ includes must respect the layer DAG"},
      {"include-cycle", "src/ include graph must be acyclic"},
      {"determinism-taint",
       "no simulation state derived from pointer identity or wall clocks"},
      {"concurrency-discipline",
       "no mutable shared state across ThreadPool jobs"},
  };
  return kRules;
}

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer.data();
        } else {
          escaped.push_back(c);
        }
    }
  }
  return escaped;
}

}  // namespace

void WriteSarif(std::ostream& out, const std::vector<Finding>& findings) {
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"crn_analyze\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/crn_analyze\",\n"
      << "          \"rules\": [\n";
  bool first = true;
  for (const auto& [id, description] : RuleDescriptions()) {
    if (!first) out << ",\n";
    first = false;
    out << "            {\"id\": \"" << JsonEscape(id)
        << "\", \"shortDescription\": {\"text\": \"" << JsonEscape(description)
        << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  first = true;
  for (const Finding& finding : findings) {
    if (!first) out << ",\n";
    first = false;
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(finding.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(finding.message)
        << "\"},\n"
        << "          \"partialFingerprints\": {\"crnAnalyze/v1\": \""
        << JsonEscape(finding.fingerprint) << "\"},\n";
    if (finding.suppressed_by_baseline) {
      out << "          \"suppressions\": [{\"kind\": \"external\"}],\n";
    }
    out << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << JsonEscape(finding.path) << "\"},\n"
        << "                \"region\": {\"startLine\": "
        << (finding.line > 0 ? finding.line : 1) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace crn::analyze
