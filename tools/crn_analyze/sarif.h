// SARIF v2.1.0 export so CI (and editors) can consume findings as a
// structured artifact. Baseline-suppressed findings are included with a
// `suppressions` record rather than dropped — the artifact is the complete
// picture, the exit code is the gate.
#ifndef CRN_ANALYZE_SARIF_H_
#define CRN_ANALYZE_SARIF_H_

#include <ostream>
#include <vector>

#include "crn_analyze/analysis.h"

namespace crn::analyze {

void WriteSarif(std::ostream& out, const std::vector<Finding>& findings);

}  // namespace crn::analyze

#endif  // CRN_ANALYZE_SARIF_H_
