// crn_lint — repo-specific static checker for the ADDC codebase.
//
// Scans src/, tests/, and bench/ for the project's known correctness
// footguns and fails the build (it runs as a ctest) when any appears:
//
//   banned-rng          rand()/std::mt19937/std::random_device anywhere but
//                       common/rng.h — std distributions are not bit-stable
//                       across standard libraries, which breaks the
//                       same-seed determinism guarantee.
//   wall-clock          system_clock/steady_clock/high_resolution_clock in
//                       src/ — simulation state must depend on sim::TimeNs
//                       only (bench/ and tests/ may time themselves).
//   raw-db-conversion   std::pow(10, …) in src/ outside common/units.h —
//                       dB↔linear conversions go through DbToLinear /
//                       SirThreshold so thresholds stay strongly typed.
//   unordered-iteration iterating an unordered_map/unordered_set declared
//                       in the same src/ file — iteration order is
//                       implementation-defined and must never feed
//                       simulation-visible state.
//   float-in-physics    the float keyword in src/ — all physics runs in
//                       double; narrowing silently changes results across
//                       platforms.
//   shared-mutable-rng  a static or thread_local Rng in src/ — the parallel
//                       experiment engine runs cells on a thread pool, and a
//                       process-wide mutable generator is both a data race
//                       and a determinism leak; every cell must derive its
//                       own Rng from its (seed, point, rep, algorithm) tuple.
//   header-guard        a src/ header whose #ifndef guard does not match
//                       its path (CRN_<PATH>_H_).
//   throw-in-callback   a literal `throw` in the event-callback layers
//                       (src/sim, src/mac, src/pu, src/faults, src/core) —
//                       an exception unwinding through the event loop
//                       strands half-applied MAC/routing state; report
//                       contract violations through CRN_CHECK and expected
//                       failures through structured results (the
//                       graph::RepairPlan pattern).
//   hot-path-math       a pow()/Distance() call in src/mac or src/spectrum
//                       outside the path-loss internals (interference.h,
//                       interference_field.h) — SIR hot-path code must read
//                       gains through the PairGainCache and compare squared
//                       distances (geom::DistanceSquared); per-event
//                       transcendental math is the exact work the cached
//                       interference engine exists to eliminate, and the
//                       perf.* budget in CI assumes it stays out.
//   library-io          std::cout/std::cerr in src/ outside src/harness/ —
//                       library layers compute; only the harness (and the
//                       tools/bench binaries) may talk to the terminal.
//                       Observability goes through obs:: sinks, results
//                       through return values and std::ostream parameters.
//
// A finding on a line containing `crn-lint-ok` is suppressed (use
// sparingly, with justification in an adjacent comment).
//
//   crn_lint <repo_root>              scan the tree (exit 1 on findings)
//   crn_lint --self-test <repo_root>  prove each rule fires on its fixture
//                                     in tools/lint_fixtures/
//
// Fixture files encode their logical in-tree path in the file name with
// `__` as the separator (src__sim__bad_clock.cc ⇒ src/sim/bad_clock.cc), so
// path-scoped rules apply to them exactly as they would in the tree.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;  // logical (repo-relative) path
  int line = 0;
  std::string rule;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `word` occurs in `line` with non-identifier characters (or the
// string edge) on both sides.
bool ContainsWord(const std::string& line, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// `rand` used as a function call: word-bounded `rand` followed by `(`.
bool ContainsCallOf(const std::string& line, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    std::size_t end = pos + name.size();
    while (end < line.size() && line[end] == ' ') ++end;
    if (left_ok && end < line.size() && line[end] == '(') return true;
    pos = pos + name.size();
  }
  return false;
}

// Multi-line literal state carried across StripCommentsAndStrings calls:
// /* */ comments and raw strings both span lines, and a raw string's close
// sequence depends on its delimiter, so a bool is not enough.
struct StripState {
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_closer;  // ")delim\"" for the currently open raw string
};

// True when the quote at `quote_pos` opens a raw string literal: the
// identifier immediately before it must be exactly one of the raw-string
// prefixes (R, uR, u8R, UR, LR).
bool IsRawStringQuote(const std::string& line, std::size_t quote_pos) {
  std::size_t begin = quote_pos;
  while (begin > 0 && IsIdentChar(line[begin - 1])) --begin;
  const std::string prefix = line.substr(begin, quote_pos - begin);
  for (const char* candidate : {"R", "uR", "u8R", "UR", "LR"}) {
    if (prefix == candidate) return true;
  }
  return false;
}

// Strips string/char literals and comments so rule matching never fires on
// documentation or message text. `state` carries /* */ and raw-string
// literal state across lines.
std::string StripCommentsAndStrings(const std::string& line, StripState& state) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (state.in_raw_string) {
      const std::size_t close = line.find(state.raw_closer, i);
      if (close == std::string::npos) return out;  // continues on the next line
      i = close + state.raw_closer.size() - 1;
      state.in_raw_string = false;
      continue;
    }
    if (state.in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        state.in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      state.in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' && IsRawStringQuote(line, i)) {
      // R"delim( ... )delim" — the delimiter runs up to the first '('.
      const std::size_t open = line.find('(', i + 1);
      if (open == std::string::npos) continue;  // malformed; let it slide
      state.raw_closer = ")" + line.substr(i + 1, open - i - 1) + "\"";
      state.in_raw_string = true;
      i = open;  // loop re-enters the in_raw_string branch at i + 1
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == quote) {
          break;
        }
        ++i;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// Names of variables declared in this file with an unordered container
// type. A heuristic, but one that matches the codebase's declaration style.
std::vector<std::string> UnorderedContainerNames(const std::vector<std::string>& code) {
  std::vector<std::string> names;
  for (const std::string& line : code) {
    for (const char* type : {"unordered_map", "unordered_set"}) {
      std::size_t pos = line.find(type);
      if (pos == std::string::npos) continue;
      std::size_t i = line.find('<', pos);
      if (i == std::string::npos) continue;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) break;
      }
      if (i >= line.size()) continue;  // multi-line type; skip
      ++i;
      while (i < line.size() && (line[i] == ' ' || line[i] == '&')) ++i;
      std::string name;
      while (i < line.size() && IsIdentChar(line[i])) name.push_back(line[i++]);
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

std::string ExpectedHeaderGuard(const std::string& logical_path) {
  // src/geom/vec2.h ⇒ CRN_GEOM_VEC2_H_
  std::string trimmed = logical_path;
  if (trimmed.rfind("src/", 0) == 0) trimmed = trimmed.substr(4);
  std::string guard = "CRN_";
  for (char c : trimmed) {
    guard.push_back(IsIdentChar(c) ? static_cast<char>(std::toupper(
                                         static_cast<unsigned char>(c)))
                                   : '_');
  }
  guard.push_back('_');
  return guard;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

// Scans one file's contents under its logical (repo-relative) path.
std::vector<Finding> ScanFile(const std::string& logical_path,
                              const std::vector<std::string>& raw_lines) {
  std::vector<Finding> findings;
  const bool in_src = StartsWith(logical_path, "src/");
  const bool is_rng_home = logical_path == "src/common/rng.h";
  const bool is_units_home = logical_path == "src/common/units.h";
  const bool is_header = logical_path.size() > 2 &&
                         logical_path.compare(logical_path.size() - 2, 2, ".h") == 0;

  // Pre-strip comments/strings, remembering raw lines for suppression.
  std::vector<std::string> code;
  code.reserve(raw_lines.size());
  StripState strip_state;
  for (const std::string& raw : raw_lines) {
    code.push_back(StripCommentsAndStrings(raw, strip_state));
  }

  auto add = [&](int line_index, const char* rule, std::string message) {
    if (raw_lines[line_index].find("crn-lint-ok") != std::string::npos) return;
    findings.push_back(
        Finding{logical_path, line_index + 1, rule, std::move(message)});
  };

  const std::vector<std::string> unordered_names =
      in_src ? UnorderedContainerNames(code) : std::vector<std::string>{};

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (line.empty()) continue;

    if (!is_rng_home) {
      if (ContainsWord(line, "mt19937") || ContainsWord(line, "random_device")) {
        add(static_cast<int>(i), "banned-rng",
            "std <random> engines are not bit-stable across standard "
            "libraries; use crn::Rng (common/rng.h)");
      } else if (ContainsCallOf(line, "rand") || ContainsCallOf(line, "srand")) {
        add(static_cast<int>(i), "banned-rng",
            "rand() has global hidden state; use crn::Rng (common/rng.h)");
      }
    }

    if (in_src) {
      if (ContainsWord(line, "system_clock") || ContainsWord(line, "steady_clock") ||
          ContainsWord(line, "high_resolution_clock")) {
        add(static_cast<int>(i), "wall-clock",
            "wall-clock reads break per-seed determinism; simulation state "
            "must depend on sim::TimeNs only");
      }
      if (!is_units_home &&
          (line.find("pow(10") != std::string::npos ||
           line.find("pow (10") != std::string::npos)) {
        add(static_cast<int>(i), "raw-db-conversion",
            "convert dB through DbToLinear()/SirThreshold (common/units.h), "
            "not raw std::pow(10, ...)");
      }
      // ContainsCallOf("Distance") does not match DistanceSquared( — the
      // char after the name must be `(` — so the squared-space idiom the
      // rule steers toward passes untouched.
      const bool in_hot_path =
          (StartsWith(logical_path, "src/mac/") ||
           StartsWith(logical_path, "src/spectrum/")) &&
          logical_path != "src/spectrum/interference.h" &&
          logical_path != "src/spectrum/interference_field.h";
      if (in_hot_path &&
          (ContainsCallOf(line, "pow") || ContainsCallOf(line, "Distance"))) {
        add(static_cast<int>(i), "hot-path-math",
            "per-event pow()/Distance() in the SIR hot path; read gains "
            "through the PairGainCache (spectrum/interference_field.h) and "
            "compare squared distances (geom::DistanceSquared)");
      }
      const bool in_callback_layer =
          StartsWith(logical_path, "src/sim/") ||
          StartsWith(logical_path, "src/mac/") ||
          StartsWith(logical_path, "src/pu/") ||
          StartsWith(logical_path, "src/faults/") ||
          StartsWith(logical_path, "src/core/");
      if (in_callback_layer && ContainsWord(line, "throw")) {
        add(static_cast<int>(i), "throw-in-callback",
            "an exception unwinding through a simulator event callback "
            "strands half-applied MAC/routing state; use CRN_CHECK for "
            "contract violations or return a structured result "
            "(graph::RepairPlan pattern)");
      }
      if (!StartsWith(logical_path, "src/harness/") &&
          (ContainsWord(line, "cout") || ContainsWord(line, "cerr"))) {
        add(static_cast<int>(i), "library-io",
            "library code must not write to the terminal; return values / "
            "take an std::ostream / use an obs:: sink (src/harness/ is the "
            "I/O layer)");
      }
      if (ContainsWord(line, "float")) {
        add(static_cast<int>(i), "float-in-physics",
            "physics runs in double; float narrows results "
            "platform-dependently");
      }
      if ((ContainsWord(line, "static") || ContainsWord(line, "thread_local")) &&
          ContainsWord(line, "Rng") && !ContainsWord(line, "const") &&
          !ContainsWord(line, "constexpr")) {
        add(static_cast<int>(i), "shared-mutable-rng",
            "a static/thread_local Rng is shared or thread-dependent state "
            "under the parallel runner; derive a local Rng from the cell's "
            "(seed, point, rep, algorithm) tuple instead");
      }
      for (const std::string& name : unordered_names) {
        const bool range_for = line.find("for") != std::string::npos &&
                               line.find(": " + name) != std::string::npos;
        const bool explicit_iter = line.find(name + ".begin()") != std::string::npos ||
                                   line.find(name + ".cbegin()") != std::string::npos;
        if (range_for || explicit_iter) {
          add(static_cast<int>(i), "unordered-iteration",
              "iteration order of '" + name +
                  "' is implementation-defined and must not feed "
                  "simulation-visible state");
        }
      }
    }
  }

  if (in_src && is_header) {
    const std::string expected = ExpectedHeaderGuard(logical_path);
    bool found_ifndef = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      std::istringstream tokens(code[i]);
      std::string directive;
      std::string guard;
      tokens >> directive >> guard;
      if (directive != "#ifndef") continue;
      found_ifndef = true;
      if (guard != expected) {
        add(static_cast<int>(i), "header-guard",
            "guard '" + guard + "' does not match path (expected '" + expected +
                "')");
      }
      break;
    }
    if (!found_ifndef) {
      findings.push_back(Finding{logical_path, 1, "header-guard",
                                 "missing #ifndef include guard (expected '" +
                                     ExpectedHeaderGuard(logical_path) + "')"});
    }
  }

  return findings;
}

std::vector<std::string> ReadLines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

int RunTreeScan(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      std::cerr << "crn_lint: missing directory " << dir << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    const std::string logical = fs::relative(file, root).generic_string();
    for (Finding& f : ScanFile(logical, ReadLines(file))) {
      findings.push_back(std::move(f));
    }
  }
  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
              << "\n";
  }
  std::cout << "crn_lint: " << files.size() << " files scanned, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}

int RunSelfTest(const fs::path& root) {
  const fs::path fixtures = root / "tools" / "lint_fixtures";
  // Every rule must demonstrably fire on its fixture; the clean fixture
  // must stay silent. A rule that silently stops matching would otherwise
  // rot into a no-op while the tree scan stays green.
  const std::map<std::string, std::string> expected = {
      {"src__common__bad_rng.cc", "banned-rng"},
      {"src__sim__bad_clock.cc", "wall-clock"},
      {"src__sim__bad_throw.cc", "throw-in-callback"},
      {"src__spectrum__bad_db.cc", "raw-db-conversion"},
      {"src__mac__bad_iteration.cc", "unordered-iteration"},
      {"src__mac__bad_hot_math.cc", "hot-path-math"},
      {"src__core__bad_float.cc", "float-in-physics"},
      {"src__harness__bad_shared_rng.cc", "shared-mutable-rng"},
      {"src__geom__bad_guard.h", "header-guard"},
      {"src__mac__bad_io.cc", "library-io"},
      {"src__core__clean_fixture.cc", ""},
      {"src__core__clean_rawstring.cc", ""},
  };
  int failures = 0;
  for (const auto& [file_name, rule] : expected) {
    const fs::path file = fixtures / file_name;
    if (!fs::exists(file)) {
      std::cout << "FAIL " << file_name << ": fixture missing\n";
      ++failures;
      continue;
    }
    std::string logical = file_name;
    std::size_t pos = 0;
    while ((pos = logical.find("__", pos)) != std::string::npos) {
      logical.replace(pos, 2, "/");
    }
    const std::vector<Finding> findings = ScanFile(logical, ReadLines(file));
    if (rule.empty()) {
      if (findings.empty()) {
        std::cout << "PASS " << file_name << ": clean\n";
      } else {
        std::cout << "FAIL " << file_name << ": expected no findings, got "
                  << findings.size() << " ([" << findings.front().rule << "] line "
                  << findings.front().line << ")\n";
        ++failures;
      }
      continue;
    }
    const bool fired =
        std::any_of(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; });
    if (fired) {
      std::cout << "PASS " << file_name << ": [" << rule << "] fired\n";
    } else {
      std::cout << "FAIL " << file_name << ": [" << rule << "] did not fire\n";
      ++failures;
    }
  }
  std::cout << "crn_lint self-test: " << (expected.size() - failures) << "/"
            << expected.size() << " fixtures ok\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool self_test = false;
  std::string root;
  for (const std::string& arg : args) {
    if (arg == "--self-test") {
      self_test = true;
    } else if (root.empty()) {
      root = arg;
    } else {
      std::cerr << "usage: crn_lint [--self-test] <repo_root>\n";
      return 2;
    }
  }
  if (root.empty()) {
    std::cerr << "usage: crn_lint [--self-test] <repo_root>\n";
    return 2;
  }
  return self_test ? RunSelfTest(root) : RunTreeScan(root);
}
