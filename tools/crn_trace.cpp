// crn_trace — flight-recorder dump inspector (sim/flight_recorder.h).
//
// Decodes the binary dump written by `addc_sim --flight-recorder-out` (or
// any FlightRecorder::WriteDump stream) and turns it into something a human
// or another tool can consume:
//
//   crn_trace DUMP                        decoded listing (newest records)
//   crn_trace DUMP --stats                per-kind action counters
//   crn_trace DUMP --chain=SEQ            causal chain ending at event #SEQ
//   crn_trace DUMP --chrome-out=FILE      Chrome trace-event JSON (Perfetto)
//   crn_trace DUMP --collapsed-out=FILE   flamegraph collapsed stacks
//
// Listing / export filters:
//   --node=ID     only records owned by node ID
//   --kind=NAME   only records of the named event kind
//   --from-ms=F   only records at sim-time >= F milliseconds
//   --to-ms=F     only records at sim-time <= F milliseconds
//   --limit=N     cap listing rows, newest kept (default 64; 0 = unlimited)
//
// The causal chain walks parent_seq links from #SEQ back to its root (an
// arm performed outside any event callback, parent 0); links point at
// sequence numbers, so the walk survives older records rotating out of the
// ring — it stops with a note when a parent predates the retained window.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "obs/chrome_trace.h"
#include "sim/flight_recorder.h"
#include "sim/time.h"

namespace {

using namespace crn;

constexpr const char* kHelp = R"(crn_trace — scheduler flight-recorder dump inspector

Usage: crn_trace DUMP [options]

Modes (default: decoded listing of the retained records):
  --stats                 per-kind arm/reschedule/disarm/fire counters
  --chain=SEQ             reconstruct the causal chain ending at event #SEQ
  --chrome-out=FILE       export retained records as Chrome trace-event JSON
                          (arm->fire / arm->disarm spans per node row; load in
                          Perfetto or chrome://tracing)
  --collapsed-out=FILE    export causal stacks of fire records in flamegraph
                          collapsed form ("root;...;kind count" per line)

Filters (listing and exports):
  --node=ID               only records owned by node ID
  --kind=NAME             only records of the named event kind
  --from-ms=F --to-ms=F   sim-time window in milliseconds
  --limit=N               listing rows / chain links to print, newest kept
                          (default 64; 0 = unlimited)
)";

struct Filter {
  std::int64_t node = -1;        // -1 = any
  std::int32_t kind = -1;        // -1 = any
  sim::TimeNs from_ns = 0;
  sim::TimeNs to_ns = std::numeric_limits<sim::TimeNs>::max();

  [[nodiscard]] bool Matches(const sim::FlightRecord& r) const {
    if (node >= 0 && r.owner != node) return false;
    if (kind >= 0 && r.kind != kind) return false;
    return r.time >= from_ns && r.time <= to_ns;
  }
};

// Index of the defining record per seq: the fire record when present (it
// carries the same parent as the arm), otherwise the arm/reschedule record.
// Disarm records reuse the cancelled entry's seq and never define it.
std::map<sim::EventId, std::size_t> IndexBySeq(
    const std::vector<sim::FlightRecord>& records) {
  std::map<sim::EventId, std::size_t> index;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const sim::FlightRecord& r = records[i];
    if (r.action == sim::SchedAction::kDisarm) continue;
    auto [it, inserted] = index.emplace(r.seq, i);
    if (!inserted && r.action == sim::SchedAction::kFire) it->second = i;
  }
  return index;
}

std::string KindName(const sim::FlightRecorder::Dump& dump, std::uint16_t id) {
  if (id < dump.kind_names.size() && !dump.kind_names[id].empty()) {
    return dump.kind_names[id];
  }
  return "kind#" + std::to_string(id);
}

int PrintChain(const sim::FlightRecorder::Dump& dump, std::uint64_t target,
               std::int64_t limit) {
  const std::map<sim::EventId, std::size_t> by_seq = IndexBySeq(dump.records);
  // Walk leaf -> root, then print root-first so the chain reads forward in
  // causal (and sim-time) order. Self-perpetuating timers (a slot boundary
  // arming the next) make chains as long as the run, so the print keeps the
  // `limit` leaf-most links and elides the older middle.
  std::vector<std::size_t> chain;
  bool truncated = false;
  sim::EventId seq = target;
  while (seq != 0) {
    const auto it = by_seq.find(seq);
    if (it == by_seq.end()) {
      truncated = true;  // parent rotated out of the ring (or bad seq)
      break;
    }
    chain.push_back(it->second);
    seq = dump.records[it->second].parent_seq;
  }
  if (chain.empty()) {
    std::cerr << "crn_trace: event #" << target
              << " is not in the retained window (" << dump.records.size()
              << " records kept of " << dump.total_recorded << ")\n";
    return 1;
  }
  std::reverse(chain.begin(), chain.end());
  std::cout << "causal chain for #" << target << " (" << chain.size()
            << " links";
  if (truncated) {
    std::cout << ", root truncated — #" << seq
              << " rotated out of the ring";
  }
  std::cout << "):\n";
  std::size_t first = 0;
  if (limit > 0 && chain.size() > static_cast<std::size_t>(limit)) {
    first = chain.size() - static_cast<std::size_t>(limit);
    std::cout << "  ... " << first << " older links elided (--limit)\n";
  }
  constexpr std::size_t kMaxIndent = 16;
  for (std::size_t i = first; i < chain.size(); ++i) {
    std::cout << std::string(2 * std::min(i - first, kMaxIndent), ' ')
              << sim::FlightRecorder::FormatRecord(dump.records[chain[i]],
                                                   dump.kind_names)
              << "\n";
  }
  return 0;
}

void PrintStats(const sim::FlightRecorder::Dump& dump) {
  std::cout << "flight dump: depth " << dump.depth << ", retained "
            << dump.records.size() << " of " << dump.total_recorded
            << " recorded actions, " << dump.kind_names.size()
            << " event kinds\n";
  std::cout << "kind                        arms  resched   disarms     fires\n";
  for (std::size_t k = 0; k < dump.counters.size(); ++k) {
    const sim::KindCounters& c = dump.counters[k];
    if (c.arms == 0 && c.reschedules == 0 && c.disarms == 0 && c.fires == 0) {
      continue;
    }
    std::string name = KindName(dump, static_cast<std::uint16_t>(k));
    name.resize(std::max<std::size_t>(name.size(), 22), ' ');
    auto cell = [](std::int64_t v, std::size_t width) {
      std::string s = std::to_string(v);
      return std::string(width > s.size() ? width - s.size() : 0, ' ') + s;
    };
    std::cout << name << cell(c.arms, 10) << cell(c.reschedules, 9)
              << cell(c.disarms, 10) << cell(c.fires, 10) << "\n";
  }
}

// Chrome export: one row per (pid=3, tid=owner). Every armed lifetime that
// resolves inside the window becomes a complete span (arm/reschedule ->
// fire/disarm); fires whose arm rotated out become instants, so nothing
// recorded is silently dropped.
int WriteChrome(const sim::FlightRecorder::Dump& dump, const Filter& filter,
                const std::string& path) {
  std::vector<obs::ChromeTraceEvent> events;
  std::map<sim::EventId, std::size_t> armed_at;  // seq -> record index
  std::int64_t max_tid = 0;
  auto emit = [&](const sim::FlightRecord& end, const sim::FlightRecord* arm) {
    if (!filter.Matches(end)) return;
    obs::ChromeTraceEvent event;
    event.name = KindName(dump, end.kind);
    event.category =
        end.action == sim::SchedAction::kFire ? "sched.fire" : "sched.disarm";
    event.pid = 3;  // distinct from sim-time spans (1) and profiler (2)
    event.tid = end.owner;
    max_tid = std::max(max_tid, event.tid);
    event.args.emplace_back("seq", std::to_string(end.seq));
    event.args.emplace_back("parent", std::to_string(end.parent_seq));
    if (arm != nullptr) {
      event.phase = obs::ChromeTraceEvent::Phase::kComplete;
      event.ts_us = static_cast<double>(arm->time) / 1000.0;
      event.dur_us = static_cast<double>(end.time - arm->time) / 1000.0;
    } else {
      event.phase = obs::ChromeTraceEvent::Phase::kInstant;
      event.ts_us = static_cast<double>(end.time) / 1000.0;
    }
    events.push_back(std::move(event));
  };
  for (const sim::FlightRecord& r : dump.records) {
    switch (r.action) {
      case sim::SchedAction::kArm:
      case sim::SchedAction::kReschedule: {
        const std::size_t index =
            static_cast<std::size_t>(&r - dump.records.data());
        armed_at[r.seq] = index;
        break;
      }
      case sim::SchedAction::kDisarm:
      case sim::SchedAction::kFire: {
        const auto it = armed_at.find(r.seq);
        emit(r, it == armed_at.end() ? nullptr : &dump.records[it->second]);
        if (it != armed_at.end()) armed_at.erase(it);
        break;
      }
    }
  }
  for (std::int64_t tid = 0; tid <= max_tid; ++tid) {
    obs::ChromeTraceEvent meta;
    meta.name = "thread_name";
    meta.category = "__metadata";
    meta.phase = obs::ChromeTraceEvent::Phase::kMetadata;
    meta.pid = 3;
    meta.tid = tid;
    meta.args.emplace_back("name", "node-" + std::to_string(tid));
    events.push_back(std::move(meta));
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return 2;
  }
  obs::WriteChromeTrace(events, out);
  std::cout << "chrome trace: " << events.size() << " events -> " << path
            << "\n";
  return 0;
}

// Flamegraph collapsed export: each fire record contributes one sample whose
// stack is its causal chain (root kind; ...; fired kind). Truncated roots
// get a "[truncated]" frame so partial chains stay distinguishable, and
// chains deeper than kMaxFrames (self-perpetuating timers run chain length
// into the tens of thousands) keep the leaf-most frames under a "[...]"
// root.
int WriteCollapsed(const sim::FlightRecorder::Dump& dump, const Filter& filter,
                   const std::string& path) {
  constexpr std::size_t kMaxFrames = 24;
  const std::map<sim::EventId, std::size_t> by_seq = IndexBySeq(dump.records);
  std::map<std::string, std::int64_t> samples;
  for (const sim::FlightRecord& r : dump.records) {
    if (r.action != sim::SchedAction::kFire || !filter.Matches(r)) continue;
    std::vector<std::string> frames;  // leaf first
    sim::EventId seq = r.seq;
    while (seq != 0) {
      if (frames.size() == kMaxFrames) {
        frames.push_back("[...]");
        break;
      }
      const auto it = by_seq.find(seq);
      if (it == by_seq.end()) {
        frames.push_back("[truncated]");
        break;
      }
      frames.push_back(KindName(dump, dump.records[it->second].kind));
      seq = dump.records[it->second].parent_seq;
    }
    std::string stack;
    for (auto frame = frames.rbegin(); frame != frames.rend(); ++frame) {
      if (!stack.empty()) stack += ';';
      stack += *frame;
    }
    ++samples[stack];
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return 2;
  }
  for (const auto& [stack, count] : samples) {
    out << stack << " " << count << "\n";
  }
  std::cout << "collapsed stacks: " << samples.size() << " unique stacks -> "
            << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  harness::FlagParser flags(argc, argv);
  if (flags.Has("help")) {
    std::cout << kHelp;
    return 0;
  }
  const bool stats = flags.GetBool("stats", false);
  const std::int64_t chain = flags.GetInt("chain", -1);
  const std::string chrome_out = flags.GetString("chrome-out", "");
  const std::string collapsed_out = flags.GetString("collapsed-out", "");
  Filter filter;
  filter.node = flags.GetInt("node", -1);
  const std::string kind_name = flags.GetString("kind", "");
  const double from_ms = flags.GetDouble("from-ms", -1.0);
  const double to_ms = flags.GetDouble("to-ms", -1.0);
  if (from_ms >= 0.0) filter.from_ns = sim::FromMilliseconds(from_ms);
  if (to_ms >= 0.0) filter.to_ns = sim::FromMilliseconds(to_ms);
  const std::int64_t limit = flags.GetInt("limit", 64);

  if (!flags.errors().empty() || !flags.UnconsumedFlags().empty() ||
      flags.positionals().size() != 1) {
    for (const std::string& error : flags.errors()) {
      std::cerr << "error: " << error << "\n";
    }
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "error: unknown flag " << unknown << "\n";
    }
    if (flags.positionals().size() != 1) {
      std::cerr << "error: expected exactly one DUMP file argument\n";
    }
    std::cerr << "run with --help for usage\n";
    return 2;
  }

  const std::string dump_path = flags.positionals().front();
  std::ifstream in(dump_path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open " << dump_path << "\n";
    return 2;
  }
  sim::FlightRecorder::Dump dump;
  std::string error;
  if (!sim::FlightRecorder::ReadDump(in, &dump, &error)) {
    std::cerr << "error: " << dump_path << ": " << error << "\n";
    return 1;
  }
  if (!kind_name.empty()) {
    const auto it = std::find(dump.kind_names.begin(), dump.kind_names.end(),
                              kind_name);
    if (it == dump.kind_names.end()) {
      std::cerr << "error: kind '" << kind_name
                << "' is not in the dump's registry (see --stats)\n";
      return 1;
    }
    filter.kind =
        static_cast<std::int32_t>(it - dump.kind_names.begin());
  }

  if (stats) {
    PrintStats(dump);
    return 0;
  }
  if (chain >= 0) {
    return PrintChain(dump, static_cast<std::uint64_t>(chain), limit);
  }
  if (!chrome_out.empty() || !collapsed_out.empty()) {
    int status = 0;
    if (!chrome_out.empty()) {
      status = WriteChrome(dump, filter, chrome_out);
      if (status != 0) return status;
    }
    if (!collapsed_out.empty()) {
      status = WriteCollapsed(dump, filter, collapsed_out);
    }
    return status;
  }

  // Default: decoded listing, oldest first, newest `limit` rows kept.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    if (filter.Matches(dump.records[i])) rows.push_back(i);
  }
  const std::size_t skipped =
      limit > 0 && rows.size() > static_cast<std::size_t>(limit)
          ? rows.size() - static_cast<std::size_t>(limit)
          : 0;
  std::cout << "flight dump " << dump_path << ": " << dump.records.size()
            << " retained of " << dump.total_recorded << " recorded, "
            << rows.size() << " match";
  if (skipped > 0) std::cout << " (showing newest " << limit << ")";
  std::cout << "\n";
  for (std::size_t i = skipped; i < rows.size(); ++i) {
    std::cout << sim::FlightRecorder::FormatRecord(dump.records[rows[i]],
                                                   dump.kind_names)
              << "\n";
  }
  return 0;
}
