// Lint fixture (logical path src/common/bad_rng.cc): every form of banned
// randomness. crn_lint --self-test requires [banned-rng] to fire here.
#include <cstdlib>
#include <random>

namespace crn {

int BadRandomDraws() {
  std::random_device device;
  std::mt19937 engine(device());
  srand(42);
  return static_cast<int>(engine()) + rand();
}

}  // namespace crn
