// Lint fixture (logical path src/core/bad_float.cc): float in physics code.
// crn_lint --self-test requires [float-in-physics] to fire here.
namespace crn::core {

float BadPathLoss(float distance) { return 1.0f / (distance * distance); }

}  // namespace crn::core
