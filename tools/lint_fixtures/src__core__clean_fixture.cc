// Lint fixture (logical path src/core/clean_fixture.cc): idiomatic code that
// must produce zero findings — including banned words inside comments and
// string literals, which the scanner strips before matching:
//   a comment may mention std::mt19937, rand(), float, or steady_clock.
#include <string>

namespace crn::core {

inline constexpr double kReferenceLoss = 1.0e-3;

// "float" and "pow(10" inside a string literal must not fire either.
inline std::string CleanDescription() {
  return "uses double, never float; converts via DbToLinear, not pow(10,x)";
}

double CleanScale(double value) { return value * kReferenceLoss; }

}  // namespace crn::core
