// Lint fixture (logical path src/core/clean_rawstring.cc): a raw string
// literal opening on one line and closing several lines later. Before the
// raw-string fix, the legacy stripper treated the `R"(` quote as an
// ordinary string start, lost track at the newline, and leaked the literal
// body into rule matching on the following lines — every banned token
// below would fire. Fixed stripper and tokenizer alike must report zero
// findings.
#include <string>

namespace crn::core {

inline std::string RawStringDoc() {
  return R"doc(
    std::mt19937 rng; rand(); srand(7);
    float narrowing = 0.f; steady_clock reads; throw "boom";
    std::cout << "library io"; std::pow(10, x / 10.0);
  )doc";
}

inline std::string RawStringPlain() {
  return R"(second form: rand() and float and throw)";
}

}  // namespace crn::core
