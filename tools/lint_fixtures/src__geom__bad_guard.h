// Lint fixture (logical path src/geom/bad_guard.h): include guard that does
// not match the header's path. crn_lint --self-test requires [header-guard]
// to fire here (expected guard: CRN_GEOM_BAD_GUARD_H_).
#ifndef CRN_WRONG_GUARD_H_
#define CRN_WRONG_GUARD_H_

namespace crn::geom {

inline int BadGuardValue() { return 1; }

}  // namespace crn::geom

#endif  // CRN_WRONG_GUARD_H_
