// Lint fixture (logical path src/harness/bad_shared_rng.cc): a mutable
// process-wide generator shared by every worker thread of the parallel
// runner. crn_lint --self-test requires [shared-mutable-rng] to fire here.
#include "common/rng.h"

namespace crn::harness {

static Rng g_shared_rng("fixture", 1234);

double NextSharedSample() { return g_shared_rng.UniformDouble(); }

}  // namespace crn::harness
