// Lint fixture (logical path src/mac/bad_hot_math.cc): per-event geometry
// math in the SIR hot path. crn_lint --self-test requires [hot-path-math]
// to fire here — on the pow() call and on the unsquared Distance() call;
// DistanceSquared() on the last line must NOT fire.
#include <cmath>

#include "geom/vec2.h"

namespace crn::mac {

double BadHotGain(double power, double d2, double alpha) {
  return power * std::pow(d2, -alpha / 2.0);
}

double BadHotRange(geom::Vec2 a, geom::Vec2 b) { return geom::Distance(a, b); }

double FineSquaredRange(geom::Vec2 a, geom::Vec2 b) {
  return geom::DistanceSquared(a, b);
}

}  // namespace crn::mac
