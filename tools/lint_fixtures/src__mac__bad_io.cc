// Lint fixture (logical path src/mac/bad_io.cc): terminal output from a
// library layer. crn_lint --self-test requires [library-io] to fire here.
#include <iostream>

namespace crn::mac {

void BadProgressReport(int delivered, int expected) {
  std::cout << "delivered " << delivered << "/" << expected << "\n";
}

}  // namespace crn::mac
