// Lint fixture (logical path src/mac/bad_iteration.cc): iterating an
// unordered container into simulation-visible state. crn_lint --self-test
// requires [unordered-iteration] to fire here.
#include <cstdint>
#include <unordered_set>

namespace crn::mac {

std::int64_t BadNeighborSum(const std::unordered_set<std::int32_t>& neighbors) {
  std::int64_t sum = 0;
  for (std::int32_t node : neighbors) {
    sum = sum * 31 + node;  // order-dependent: first divergence point
  }
  return sum;
}

}  // namespace crn::mac
