// Lint fixture (logical path src/sim/bad_clock.cc): wall-clock reads inside
// simulation code. crn_lint --self-test requires [wall-clock] to fire here.
#include <chrono>
#include <cstdint>

namespace crn::sim {

std::int64_t BadNow() {
  const auto tick = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tick.time_since_epoch())
      .count();
}

}  // namespace crn::sim
