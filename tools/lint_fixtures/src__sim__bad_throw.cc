// Lint fixture (logical path src/sim/bad_throw.cc): a raw throw inside an
// event callback. crn_lint --self-test requires [throw-in-callback] to fire
// here.
#include <stdexcept>

namespace crn::sim {

void BadCallback(int remaining) {
  if (remaining < 0) {
    throw std::runtime_error("queue underflow");
  }
}

}  // namespace crn::sim
