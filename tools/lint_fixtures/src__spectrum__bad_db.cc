// Lint fixture (logical path src/spectrum/bad_db.cc): raw dB-to-linear
// conversion bypassing common/units.h. crn_lint --self-test requires
// [raw-db-conversion] to fire here.
#include <cmath>

namespace crn::spectrum {

double BadDbToLinear(double db) { return std::pow(10, db / 10.0); }

}  // namespace crn::spectrum
