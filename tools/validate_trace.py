#!/usr/bin/env python3
"""CI validator for the observability layer's JSON artifacts.

Checks, without any third-party dependency:
  --trace FILE    Chrome trace-event / Perfetto JSON (obs/chrome_trace.cc):
                  object form with "traceEvents", every event carries the
                  required fields for its phase, timestamps are monotone
                  non-decreasing in file order (the writer sorts), and async
                  "b"/"e" events are balanced per correlation id.
  --bench FILE    BENCH_<name>.json envelope (harness/json_writer.cc):
                  schema_version == 2, and when a "profile" section is
                  present it has the per-phase aggregate shape.
  --metrics FILE  metrics registry export (harness/obs_export.cc):
                  schema_version == 1, digest is 0x-hex, "final" entries are
                  sorted by key, series timestamps are monotone.

Exit code 0 when every given file validates; 1 with a message otherwise.
"""
from __future__ import annotations

import argparse
import json
import sys

VALID_PHASES = {"X", "b", "e", "i", "M"}


def fail(message: str) -> None:
    raise SystemExit(f"validate_trace: {message}")


def validate_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    last_ts = None
    async_depth: dict[tuple[int, int], int] = {}
    for index, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event {index} missing '{key}'")
        phase = event["ph"]
        if phase not in VALID_PHASES:
            fail(f"{path}: event {index} has unknown phase {phase!r}")
        if phase == "M":
            continue  # metadata sorts first and carries no timeline position
        ts = float(event["ts"])
        if ts < 0:
            fail(f"{path}: event {index} has negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: event {index} ts {ts} < previous {last_ts} "
                 "(writer must emit monotone timestamps)")
        last_ts = ts
        if phase == "X" and float(event.get("dur", -1)) < 0:
            fail(f"{path}: complete event {index} has negative duration")
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{path}: async event {index} missing 'id'")
            key = (int(event["pid"]), int(event["id"]))
            async_depth[key] = async_depth.get(key, 0) + (1 if phase == "b" else -1)
            if async_depth[key] < 0:
                fail(f"{path}: async end before begin for id {event['id']}")
    unbalanced = {key: depth for key, depth in async_depth.items() if depth != 0}
    if unbalanced:
        fail(f"{path}: {len(unbalanced)} unbalanced async span id(s)")
    print(f"validate_trace: {path}: {len(events)} events OK")


def validate_bench(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema_version") != 2:
        fail(f"{path}: schema_version must be 2, got "
             f"{document.get('schema_version')!r}")
    for key in ("bench", "scale", "wall_seconds"):
        if key not in document:
            fail(f"{path}: missing '{key}'")
    for sweep in document.get("sweeps", []):
        metrics = sweep.get("metrics")
        if metrics is None:
            continue
        title = sweep.get("title", "?")
        if not isinstance(metrics, dict):
            fail(f"{path}: sweep {title!r} metrics must be an object")
        keys = list(metrics.keys())
        if keys != sorted(keys):
            fail(f"{path}: sweep {title!r} metrics keys must be sorted")
        for key, value in metrics.items():
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: sweep {title!r} metric {key!r} must be an "
                     f"integer counter, got {value!r}")
    profile = document.get("profile")
    if profile is not None:
        if "spans_total" not in profile or "phases" not in profile:
            fail(f"{path}: profile section missing spans_total/phases")
        for phase in profile["phases"]:
            for key in ("phase", "count", "total_s", "mean_s", "min_s", "max_s"):
                if key not in phase:
                    fail(f"{path}: profile phase missing '{key}'")
    print(f"validate_trace: {path}: schema v2 envelope OK"
          + (" (with profile)" if profile is not None else ""))


def validate_metrics(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema_version") != 1:
        fail(f"{path}: metrics schema_version must be 1")
    digest = document.get("digest", "")
    if not (isinstance(digest, str) and digest.startswith("0x")
            and len(digest) == 18):
        fail(f"{path}: digest must be fixed-width 0x-hex, got {digest!r}")
    final = document.get("final")
    if not isinstance(final, dict) or "entries" not in final:
        fail(f"{path}: missing final snapshot")
    keys = [entry["key"] for entry in final["entries"]]
    if keys != sorted(keys):
        fail(f"{path}: final snapshot entries must be sorted by key")
    last_at = None
    for point in document.get("series", []):
        at = int(point["at_ns"])
        if last_at is not None and at < last_at:
            fail(f"{path}: series at_ns not monotone")
        last_at = at
    print(f"validate_trace: {path}: metrics document OK "
          f"({len(keys)} instruments, {len(document.get('series', []))} "
          "series points)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[])
    parser.add_argument("--bench", action="append", default=[])
    parser.add_argument("--metrics", action="append", default=[])
    arguments = parser.parse_args()
    if not (arguments.trace or arguments.bench or arguments.metrics):
        parser.error("give at least one of --trace/--bench/--metrics")
    for path in arguments.trace:
        validate_trace(path)
    for path in arguments.bench:
        validate_bench(path)
    for path in arguments.metrics:
        validate_metrics(path)


if __name__ == "__main__":
    main()
    sys.exit(0)
