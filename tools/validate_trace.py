#!/usr/bin/env python3
"""CI validator for the observability layer's JSON artifacts.

Checks, without any third-party dependency:
  --trace FILE    Chrome trace-event / Perfetto JSON (obs/chrome_trace.cc):
                  object form with "traceEvents", every event carries the
                  required fields for its phase, timestamps are monotone
                  non-decreasing in file order (the writer sorts), and async
                  "b"/"e" events are balanced per correlation id.
  --bench FILE    BENCH_<name>.json envelope (harness/json_writer.cc):
                  schema_version == 2, and when a "profile" section is
                  present it has the per-phase aggregate shape.
  --metrics FILE  metrics registry export (harness/obs_export.cc):
                  schema_version == 1, digest is 0x-hex, "final" entries are
                  sorted by key, series timestamps are monotone.
  --flight FILE   scheduler flight-recorder binary dump
                  (sim/flight_recorder.cc, DESIGN.md §13): magic + layout,
                  record times monotone non-decreasing, arm seqs strictly
                  increasing, parent_seq < seq for arm/reschedule/fire,
                  every kind id registered, and per-kind counters consistent
                  (disarms + fires never exceed arms).

Exit code 0 when every given file validates; 1 with a message otherwise.
"""
from __future__ import annotations

import argparse
import json
import struct
import sys

VALID_PHASES = {"X", "b", "e", "i", "M"}


def fail(message: str) -> None:
    raise SystemExit(f"validate_trace: {message}")


def validate_trace(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit must be 'ms'")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    last_ts = None
    async_depth: dict[tuple[int, int], int] = {}
    for index, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event {index} missing '{key}'")
        phase = event["ph"]
        if phase not in VALID_PHASES:
            fail(f"{path}: event {index} has unknown phase {phase!r}")
        if phase == "M":
            continue  # metadata sorts first and carries no timeline position
        ts = float(event["ts"])
        if ts < 0:
            fail(f"{path}: event {index} has negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: event {index} ts {ts} < previous {last_ts} "
                 "(writer must emit monotone timestamps)")
        last_ts = ts
        if phase == "X" and float(event.get("dur", -1)) < 0:
            fail(f"{path}: complete event {index} has negative duration")
        if phase in ("b", "e"):
            if "id" not in event:
                fail(f"{path}: async event {index} missing 'id'")
            key = (int(event["pid"]), int(event["id"]))
            async_depth[key] = async_depth.get(key, 0) + (1 if phase == "b" else -1)
            if async_depth[key] < 0:
                fail(f"{path}: async end before begin for id {event['id']}")
    unbalanced = {key: depth for key, depth in async_depth.items() if depth != 0}
    if unbalanced:
        fail(f"{path}: {len(unbalanced)} unbalanced async span id(s)")
    print(f"validate_trace: {path}: {len(events)} events OK")


def validate_bench(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema_version") != 2:
        fail(f"{path}: schema_version must be 2, got "
             f"{document.get('schema_version')!r}")
    for key in ("bench", "scale", "wall_seconds"):
        if key not in document:
            fail(f"{path}: missing '{key}'")
    for sweep in document.get("sweeps", []):
        metrics = sweep.get("metrics")
        if metrics is None:
            continue
        title = sweep.get("title", "?")
        if not isinstance(metrics, dict):
            fail(f"{path}: sweep {title!r} metrics must be an object")
        keys = list(metrics.keys())
        if keys != sorted(keys):
            fail(f"{path}: sweep {title!r} metrics keys must be sorted")
        for key, value in metrics.items():
            if not isinstance(value, int) or isinstance(value, bool):
                fail(f"{path}: sweep {title!r} metric {key!r} must be an "
                     f"integer counter, got {value!r}")
    profile = document.get("profile")
    if profile is not None:
        if "spans_total" not in profile or "phases" not in profile:
            fail(f"{path}: profile section missing spans_total/phases")
        for phase in profile["phases"]:
            for key in ("phase", "count", "total_s", "mean_s", "min_s", "max_s"):
                if key not in phase:
                    fail(f"{path}: profile phase missing '{key}'")
    print(f"validate_trace: {path}: schema v2 envelope OK"
          + (" (with profile)" if profile is not None else ""))


def validate_metrics(path: str) -> None:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema_version") != 1:
        fail(f"{path}: metrics schema_version must be 1")
    digest = document.get("digest", "")
    if not (isinstance(digest, str) and digest.startswith("0x")
            and len(digest) == 18):
        fail(f"{path}: digest must be fixed-width 0x-hex, got {digest!r}")
    final = document.get("final")
    if not isinstance(final, dict) or "entries" not in final:
        fail(f"{path}: missing final snapshot")
    keys = [entry["key"] for entry in final["entries"]]
    if keys != sorted(keys):
        fail(f"{path}: final snapshot entries must be sorted by key")
    last_at = None
    for point in document.get("series", []):
        at = int(point["at_ns"])
        if last_at is not None and at < last_at:
            fail(f"{path}: series at_ns not monotone")
        last_at = at
    print(f"validate_trace: {path}: metrics document OK "
          f"({len(keys)} instruments, {len(document.get('series', []))} "
          "series points)")


FLIGHT_MAGIC = b"CRNFREC1"
ACTION_NAMES = ("arm", "resched", "disarm", "fire")


class _Reader:
    """Bounds-checked little-endian reader over the dump bytes."""

    def __init__(self, data: bytes, path: str) -> None:
        self.data = data
        self.offset = 0
        self.path = path

    def take(self, count: int, what: str) -> bytes:
        if self.offset + count > len(self.data):
            fail(f"{self.path}: truncated while reading {what} "
                 f"(need {count} bytes at offset {self.offset})")
        chunk = self.data[self.offset:self.offset + count]
        self.offset += count
        return chunk

    def u16(self, what: str) -> int:
        return struct.unpack("<H", self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return struct.unpack("<Q", self.take(8, what))[0]


def validate_flight(path: str) -> None:
    with open(path, "rb") as handle:
        reader = _Reader(handle.read(), path)
    if reader.take(8, "magic") != FLIGHT_MAGIC:
        fail(f"{path}: bad magic (not a flight-recorder dump)")
    depth = reader.u64("depth")
    total_recorded = reader.u64("total_recorded")
    kind_count = reader.u32("kind_count")
    if kind_count == 0:
        fail(f"{path}: kind table must at least hold the 'unnamed' kind 0")
    kind_names = []
    for index in range(kind_count):
        length = reader.u32(f"kind {index} name length")
        kind_names.append(reader.take(length, f"kind {index} name").decode())
    for index, name in enumerate(kind_names):
        if index > 0 and not name:
            fail(f"{path}: kind {index} has an empty name")
    counters = []
    for index in range(kind_count):
        arms = reader.u64(f"kind {index} arms")
        reschedules = reader.u64(f"kind {index} reschedules")
        disarms = reader.u64(f"kind {index} disarms")
        fires = reader.u64(f"kind {index} fires")
        if disarms + fires > arms:
            fail(f"{path}: kind {kind_names[index]!r} resolved more "
                 f"lifetimes than it armed ({disarms} disarms + {fires} "
                 f"fires > {arms} arms)")
        counters.append((arms, reschedules, disarms, fires))
    record_count = reader.u64("record count")
    if record_count > depth:
        fail(f"{path}: {record_count} stored records exceed ring depth "
             f"{depth}")
    if record_count > total_recorded:
        fail(f"{path}: {record_count} stored records exceed "
             f"{total_recorded} ever recorded")
    last_time = None
    last_arm_seq = None
    for index in range(record_count):
        what = f"record {index}"
        seq = reader.u64(what)
        time_ns = reader.u64(what)
        parent_seq = reader.u64(what)
        reader.u32(what)  # owner (int32; any value is legal)
        kind = reader.u16(what)
        action = reader.take(1, what)[0]
        reader.take(1, what)  # pad
        if action >= len(ACTION_NAMES):
            fail(f"{path}: record {index} has unknown action {action}")
        if kind >= kind_count:
            fail(f"{path}: record {index} references unregistered kind "
                 f"{kind} (table holds {kind_count})")
        if last_time is not None and time_ns < last_time:
            fail(f"{path}: record {index} time {time_ns} < previous "
                 f"{last_time} (actions must append in sim-time order)")
        last_time = time_ns
        if action in (0, 1):  # arm / reschedule: freshly allocated seq
            if last_arm_seq is not None and seq <= last_arm_seq:
                fail(f"{path}: record {index} arm seq {seq} not strictly "
                     f"increasing (previous arm {last_arm_seq})")
            last_arm_seq = seq
        # Disarm records reuse the cancelled entry's seq with the canceller
        # as parent, so parent < seq holds only for the other actions.
        if action != 2 and parent_seq >= seq:
            fail(f"{path}: record {index} ({ACTION_NAMES[action]}) "
                 f"parent #{parent_seq} >= seq #{seq} — causality violated")
    if reader.offset != len(reader.data):
        fail(f"{path}: {len(reader.data) - reader.offset} trailing bytes "
             "after the last record")
    print(f"validate_trace: {path}: flight dump OK ({record_count} records, "
          f"{total_recorded} recorded, {kind_count} kinds)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[])
    parser.add_argument("--bench", action="append", default=[])
    parser.add_argument("--metrics", action="append", default=[])
    parser.add_argument("--flight", action="append", default=[])
    arguments = parser.parse_args()
    if not (arguments.trace or arguments.bench or arguments.metrics
            or arguments.flight):
        parser.error("give at least one of --trace/--bench/--metrics/--flight")
    for path in arguments.trace:
        validate_trace(path)
    for path in arguments.bench:
        validate_bench(path)
    for path in arguments.metrics:
        validate_metrics(path)
    for path in arguments.flight:
        validate_flight(path)


if __name__ == "__main__":
    main()
    sys.exit(0)
